#include "exp/result.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace eo::exp {

namespace {

/// Simulated nanoseconds to milliseconds for the JSON document.
double to_ms(SimDuration d) { return static_cast<double>(d) / 1e6; }

void write_cell(json::Writer& w, const CellOutcome& o) {
  w.begin_object();
  w.key("coords");
  w.begin_array();
  for (const auto& c : o.cell.coords) w.value(c);
  w.end_array();
  if (o.skipped) {
    w.field("skipped", true);
    w.end_object();
    return;
  }
  if (o.not_applicable) {
    w.field("na", true);
    w.end_object();
    return;
  }
  w.field("completed", o.run.completed);
  w.field("attempts", o.attempts);
  w.field("deadline_ms", to_ms(o.final_deadline));
  w.field("exec_ms", o.ms());
  w.field("utilization_percent", o.run.utilization_percent);
  w.field("spin_busy_ms", to_ms(o.run.spin_busy));
  w.field("context_switches", o.run.stats.context_switches);
  w.field("migrations_in_node", o.run.stats.migrations_in_node);
  w.field("migrations_cross_node", o.run.stats.migrations_cross_node);
  w.field("vb_parks", o.run.stats.vb_parks);
  w.field("wakeup_p50_ns", o.run.wakeup_latency.p50());
  w.field("wakeup_p95_ns", o.run.wakeup_latency.p95());
  w.field("wakeup_p99_ns", o.run.wakeup_latency.p99());
  w.field("wakeup_count", o.run.wakeup_latency.total_count());
  w.key("bwd");
  w.begin_object();
  w.field("windows", o.run.bwd.windows);
  w.field("tp", o.run.bwd.tp);
  w.field("fp", o.run.bwd.fp);
  w.field("fn", o.run.bwd.fn);
  w.field("tn", o.run.bwd.tn);
  w.end_object();
  if (o.run.metrics) {
    const obs::MetricsDoc& m = *o.run.metrics;
    w.key("obs");
    w.begin_object();
    w.field("samples", static_cast<std::uint64_t>(m.ticks));
    w.field("dropped_samples", static_cast<std::uint64_t>(m.dropped_ticks));
    w.field("watchdog_checks", m.watchdog_checks);
    w.field("watchdog_violations", m.watchdog_violations);
    w.end_object();
  }
  if (!o.extra.empty()) {
    w.key("extra");
    w.begin_object();
    for (const auto& [k, v] : o.extra) w.field(k, v);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

void ResultDoc::add_sweep(const Sweep& sweep, const Outcomes& outcomes) {
  EO_CHECK_EQ(sweep.size(), outcomes.size());
  SweepBlock b;
  b.name = sweep.name();
  for (std::size_t a = 0; a < sweep.n_axes(); ++a) {
    b.axes.emplace_back(sweep.axis_name(a), sweep.labels(a));
  }
  b.cells.assign(outcomes.begin(), outcomes.end());
  sweeps_.push_back(std::move(b));
}

void ResultDoc::set_meta(const std::string& key, const std::string& value) {
  MetaEntry e;
  e.key = key;
  e.str = value;
  meta_.push_back(std::move(e));
}

void ResultDoc::set_meta(const std::string& key, double value) {
  MetaEntry e;
  e.key = key;
  e.num = value;
  e.is_num = true;
  meta_.push_back(std::move(e));
}

void ResultDoc::add_history(PerfHistoryEntry entry) {
  history_.push_back(std::move(entry));
  if (history_.size() > kMaxHistory) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(history_.size() -
                                                   kMaxHistory));
  }
}

std::string ResultDoc::render() const {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.field("schema", kResultSchemaName);
  w.field("schema_version", kResultSchemaVersion);
  w.field("bench", bench_id_);
  w.field("scale", scale_);
  w.field("seed", seed_);
  w.key("meta");
  w.begin_object();
  bool have_rev = false;
  for (const auto& e : meta_) have_rev = have_rev || e.key == "git_rev";
  if (!have_rev) w.field("git_rev", current_git_rev());
  for (const auto& e : meta_) {
    if (e.is_num) {
      w.field(e.key, e.num);
    } else {
      w.field(e.key, e.str);
    }
  }
  if (!history_.empty()) {
    w.key("history");
    w.begin_array();
    for (const auto& h : history_) {
      w.begin_object();
      w.field("git_rev", h.git_rev);
      w.field("stamp", h.stamp);
      for (const auto& [micro, ns] : h.ns_per_item) w.field(micro, ns);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.key("sweeps");
  w.begin_array();
  for (const auto& s : sweeps_) {
    w.begin_object();
    w.field("name", s.name);
    w.key("axes");
    w.begin_array();
    for (const auto& [name, values] : s.axes) {
      w.begin_object();
      w.field("name", name);
      w.key("values");
      w.begin_array();
      for (const auto& v : values) w.value(v);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("cells");
    w.begin_array();
    for (const auto& c : s.cells) write_cell(w, c);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return os.str();
}

bool ResultDoc::write(const std::string& path, std::string* err) const {
  const std::string text = render();
  if (!validate_result_json(text, err)) return false;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  f << text;
  f.close();
  if (!f) {
    if (err) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err) *err = msg;
  return false;
}

bool check_number_field(const json::Value& obj, const char* key,
                        std::string* err) {
  const json::Value* v = obj.get(key);
  if (!v || !v->is_number()) {
    return fail(err, std::string("cell missing numeric field '") + key + "'");
  }
  return true;
}

bool validate_cell(const json::Value& cell, std::size_t n_axes,
                   const std::vector<std::vector<std::string>>& axis_values,
                   std::string* err) {
  if (!cell.is_object()) return fail(err, "cell is not an object");
  const json::Value* coords = cell.get("coords");
  if (!coords || !coords->is_array() || coords->items.size() != n_axes) {
    return fail(err, "cell coords missing or wrong arity");
  }
  for (std::size_t a = 0; a < n_axes; ++a) {
    const json::Value& c = coords->items[a];
    if (!c.is_string()) return fail(err, "cell coord is not a string");
    bool member = false;
    for (const auto& v : axis_values[a]) member = member || v == c.str;
    if (!member) {
      return fail(err, "cell coord '" + c.str + "' not in axis values");
    }
  }
  const json::Value* skipped = cell.get("skipped");
  if (skipped) {
    if (!skipped->is_bool()) return fail(err, "'skipped' is not a bool");
    return true;
  }
  const json::Value* na = cell.get("na");
  if (na) {
    if (!na->is_bool()) return fail(err, "'na' is not a bool");
    return true;
  }
  const json::Value* completed = cell.get("completed");
  if (!completed || !completed->is_bool()) {
    return fail(err, "cell missing bool field 'completed'");
  }
  for (const char* key :
       {"attempts", "deadline_ms", "exec_ms", "utilization_percent",
        "spin_busy_ms", "context_switches", "migrations_in_node",
        "migrations_cross_node", "vb_parks", "wakeup_p50_ns", "wakeup_p95_ns",
        "wakeup_p99_ns", "wakeup_count"}) {
    if (!check_number_field(cell, key, err)) return false;
  }
  const json::Value* bwd = cell.get("bwd");
  if (!bwd || !bwd->is_object()) {
    return fail(err, "cell missing object field 'bwd'");
  }
  for (const char* key : {"windows", "tp", "fp", "fn", "tn"}) {
    if (!check_number_field(*bwd, key, err)) return false;
  }
  const json::Value* obs = cell.get("obs");
  if (obs) {
    if (!obs->is_object()) return fail(err, "'obs' is not an object");
    for (const char* key : {"samples", "dropped_samples", "watchdog_checks",
                            "watchdog_violations"}) {
      if (!check_number_field(*obs, key, err)) return false;
    }
  }
  const json::Value* extra = cell.get("extra");
  if (extra) {
    if (!extra->is_object()) return fail(err, "'extra' is not an object");
    for (const auto& [k, v] : extra->fields) {
      if (!v.is_number()) {
        return fail(err, "extra field '" + k + "' is not a number");
      }
    }
  }
  return true;
}

bool validate_sweep(const json::Value& sweep, std::string* err) {
  if (!sweep.is_object()) return fail(err, "sweep is not an object");
  const json::Value* name = sweep.get("name");
  if (!name || !name->is_string() || name->str.empty()) {
    return fail(err, "sweep missing non-empty string 'name'");
  }
  const json::Value* axes = sweep.get("axes");
  if (!axes || !axes->is_array()) {
    return fail(err, "sweep missing array 'axes'");
  }
  std::vector<std::vector<std::string>> axis_values;
  std::size_t product = 1;
  for (const auto& ax : axes->items) {
    if (!ax.is_object()) return fail(err, "axis is not an object");
    const json::Value* an = ax.get("name");
    if (!an || !an->is_string()) return fail(err, "axis missing string 'name'");
    const json::Value* vals = ax.get("values");
    if (!vals || !vals->is_array() || vals->items.empty()) {
      return fail(err, "axis missing non-empty array 'values'");
    }
    std::vector<std::string> labels;
    for (const auto& v : vals->items) {
      if (!v.is_string()) return fail(err, "axis value is not a string");
      labels.push_back(v.str);
    }
    product *= labels.size();
    axis_values.push_back(std::move(labels));
  }
  const json::Value* cells = sweep.get("cells");
  if (!cells || !cells->is_array()) {
    return fail(err, "sweep missing array 'cells'");
  }
  if (cells->items.size() != product) {
    return fail(err, "sweep '" + name->str + "' has " +
                         std::to_string(cells->items.size()) +
                         " cells, expected " + std::to_string(product));
  }
  for (const auto& cell : cells->items) {
    if (!validate_cell(cell, axis_values.size(), axis_values, err)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool validate_result_json(const std::string& text, std::string* err) {
  json::Value root;
  if (!json::parse(text, &root, err)) return false;
  if (!root.is_object()) return fail(err, "document root is not an object");
  const json::Value* schema = root.get("schema");
  if (!schema || !schema->is_string() || schema->str != kResultSchemaName) {
    return fail(err, std::string("'schema' is not \"") + kResultSchemaName +
                         "\"");
  }
  const json::Value* version = root.get("schema_version");
  if (!version || !version->is_number() ||
      version->num != kResultSchemaVersion) {
    return fail(err, "'schema_version' is not " +
                         std::to_string(kResultSchemaVersion));
  }
  const json::Value* bench = root.get("bench");
  if (!bench || !bench->is_string() || bench->str.empty()) {
    return fail(err, "'bench' missing or empty");
  }
  const json::Value* scale = root.get("scale");
  if (!scale || !scale->is_number() || !(scale->num > 0)) {
    return fail(err, "'scale' missing or not > 0");
  }
  const json::Value* seed = root.get("seed");
  if (!seed || !seed->is_number()) return fail(err, "'seed' missing");
  const json::Value* meta = root.get("meta");
  if (!meta || !meta->is_object()) {
    return fail(err, "'meta' missing or not an object");
  }
  const json::Value* rev = meta->get("git_rev");
  if (!rev || !rev->is_string()) {
    return fail(err, "meta missing string 'git_rev'");
  }
  const json::Value* history = meta->get("history");
  if (history) {
    if (!history->is_array()) {
      return fail(err, "meta 'history' is not an array");
    }
    if (history->items.size() > ResultDoc::kMaxHistory) {
      return fail(err, "meta 'history' exceeds " +
                           std::to_string(ResultDoc::kMaxHistory) +
                           " entries");
    }
    for (const auto& h : history->items) {
      if (!h.is_object()) return fail(err, "history entry is not an object");
      for (const char* key : {"git_rev", "stamp"}) {
        const json::Value* s = h.get(key);
        if (!s || !s->is_string()) {
          return fail(err,
                      std::string("history entry missing string '") + key +
                          "'");
        }
      }
      for (const auto& [k, v] : h.fields) {
        if (k == "git_rev" || k == "stamp") continue;
        if (!v.is_number()) {
          return fail(err, "history field '" + k + "' is not a number");
        }
      }
    }
  }
  const json::Value* sweeps = root.get("sweeps");
  if (!sweeps || !sweeps->is_array() || sweeps->items.empty()) {
    return fail(err, "'sweeps' missing or empty");
  }
  for (const auto& s : sweeps->items) {
    if (!validate_sweep(s, err)) return false;
  }
  return true;
}

std::vector<PerfHistoryEntry> parse_history(const std::string& text) {
  std::vector<PerfHistoryEntry> out;
  json::Value root;
  std::string err;
  if (!json::parse(text, &root, &err) || !root.is_object()) return out;
  const json::Value* meta = root.get("meta");
  if (!meta || !meta->is_object()) return out;
  const json::Value* history = meta->get("history");
  if (!history || !history->is_array()) return out;
  for (const auto& h : history->items) {
    if (!h.is_object()) continue;
    const json::Value* rev = h.get("git_rev");
    const json::Value* stamp = h.get("stamp");
    if (!rev || !rev->is_string() || !stamp || !stamp->is_string()) continue;
    PerfHistoryEntry e;
    e.git_rev = rev->str;
    e.stamp = stamp->str;
    for (const auto& [k, v] : h.fields) {
      if (k == "git_rev" || k == "stamp") continue;
      if (v.is_number()) e.ns_per_item.emplace_back(k, v.num);
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string current_git_rev() {
  FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (!p) return "unknown";
  char buf[64] = {0};
  std::string out;
  while (std::fgets(buf, sizeof(buf), p)) out += buf;
  ::pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (out.empty() || out.find_first_not_of("0123456789abcdef") !=
                         std::string::npos) {
    return "unknown";
  }
  return out;
}

}  // namespace eo::exp
