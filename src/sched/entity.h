// Scheduling entity embedded in every task.
//
// Mirrors the kernel's `sched_entity`: the red-black-tree node, the virtual
// runtime that orders it, and the flags the paper's two mechanisms add —
// `vb_blocked` (virtual blocking's thread_state) and `bwd_skip` (the skip
// flag set by busy-waiting detection).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "sched/rbtree.h"

namespace eo::sched {

/// Nice-0 load weight, as in Linux.
inline constexpr int kNice0Weight = 1024;

/// Virtual-runtime offset applied to VB-blocked entities so they sort after
/// every normally runnable entity ("inserted to the tail of the RB tree ...
/// assigned an arbitrarily large virtual runtime"). Large enough that no real
/// vruntime reaches it in any experiment (1e15 ns ≈ 11.6 simulated days).
inline constexpr std::int64_t kVbVruntimeBase = 1'000'000'000'000'000;

struct SchedEntity {
  RbNode rb;

  /// Weighted virtual runtime in nanoseconds; the RB-tree key.
  std::int64_t vruntime = 0;

  int weight = kNice0Weight;

  /// On a runqueue (either in the tree or running as curr).
  bool on_rq = false;

  /// --- Virtual blocking (paper Section 3.1) ---
  /// thread_state flag: 1 = virtually blocked, skipped by the scheduler.
  bool vb_blocked = false;
  /// True vruntime saved while the entity is parked at the tree tail.
  std::int64_t saved_vruntime = 0;

  /// --- Busy-waiting detection (paper Section 3.2) ---
  /// Skip flag: not scheduled until the other threads on this core have been
  /// scheduled at least once.
  bool bwd_skip = false;
  /// Value of the runqueue's pick sequence when the skip flag was set.
  std::uint64_t bwd_skip_seq = 0;

  /// Runqueue (core id) this entity is on; -1 if none.
  int cpu = -1;

  /// Owning task's id, mirrored here so runqueue-level trace records can be
  /// labeled without reaching into the kern layer.
  std::int32_t tid = 0;

  /// Pinned entities are never migrated by the balancer.
  bool pinned = false;

  /// Wall time when the entity last started executing.
  SimTime exec_start = 0;
  /// Total execution time accumulated.
  SimDuration sum_exec = 0;

  /// Owning task (opaque at this layer; the kernel downcasts).
  void* task = nullptr;

  /// Delta to add to vruntime for `delta_exec` of wall execution.
  std::int64_t vruntime_delta(SimDuration delta_exec) const {
    if (weight == kNice0Weight) return delta_exec;
    return delta_exec * kNice0Weight / weight;
  }
};

struct ByVruntime {
  bool operator()(const SchedEntity& a, const SchedEntity& b) const {
    return a.vruntime < b.vruntime;
  }
};

}  // namespace eo::sched
