#include "sched/load_balancer.h"

namespace eo::sched {

std::optional<BalanceDecision> LoadBalancer::find_pull(
    int dst_cpu, const std::vector<Runqueue*>& rqs,
    FunctionRef<bool(int)> online, bool newly_idle) const {
  m_attempts_.inc();
  const int threshold = newly_idle ? 1 : params_->balance_imbalance;
  // Prefer a same-socket pull; only cross sockets if the local socket is
  // balanced.
  if (auto d = find_pull_in(dst_cpu, rqs, online, /*same_socket_only=*/true,
                            threshold)) {
    m_pulls_.inc();
    return d;
  }
  auto d = find_pull_in(dst_cpu, rqs, online, /*same_socket_only=*/false,
                        threshold);
  if (d) m_pulls_.inc();
  return d;
}

std::optional<BalanceDecision> LoadBalancer::find_pull_in(
    int dst_cpu, const std::vector<Runqueue*>& rqs,
    FunctionRef<bool(int)> online, bool same_socket_only,
    int threshold) const {
  const int dst_socket = topo_->socket_of(dst_cpu);
  // Load metric: schedulable entities plus VB-parked ones. VB deliberately
  // keeps parked threads in the count, which is what stabilizes the load
  // signal; curr is included via nr_running().
  const int my_load = rqs[static_cast<size_t>(dst_cpu)]->nr_running();

  int busiest = -1;
  int busiest_load = my_load;
  for (int cpu = 0; cpu < static_cast<int>(rqs.size()); ++cpu) {
    if (cpu == dst_cpu || !online(cpu)) continue;
    const bool same = topo_->socket_of(cpu) == dst_socket;
    if (same_socket_only && !same) continue;
    if (!same_socket_only && same) continue;  // second pass: other sockets only
    const int load = rqs[static_cast<size_t>(cpu)]->nr_running();
    if (load > busiest_load) {
      busiest_load = load;
      busiest = cpu;
    }
  }
  if (busiest < 0 || busiest_load - my_load < threshold) return std::nullopt;
  SchedEntity* victim = rqs[static_cast<size_t>(busiest)]->migration_candidate();
  if (victim == nullptr) return std::nullopt;
  return BalanceDecision{busiest, dst_cpu, victim,
                         topo_->socket_of(busiest) != dst_socket};
}

}  // namespace eo::sched
