#include "sched/policy_zoo.h"

#include <algorithm>

#include "common/logging.h"
#include "hw/topology.h"

namespace eo::sched {

// ---------------------------------------------------------------------------
// QueueBasedPolicy: the shared engine
// ---------------------------------------------------------------------------

QueueBasedPolicy::QueueBasedPolicy(const hw::Topology* topo,
                                   const CfsParams* cfs,
                                   const PolicyParams* params,
                                   QueueTuning tuning)
    : cfs_(cfs),
      params_(params),
      tuning_(tuning),
      balancer_(topo, cfs) {
  const int n = topo->n_cores();
  rq_views_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rqs_.emplace_back(i, cfs_, &tuning_);
    rq_views_.push_back(&rqs_.back());
  }
}

void QueueBasedPolicy::attach(const ObsHooks& hooks) {
  for (Runqueue& q : rqs_) q.attach(hooks);
  balancer_.attach(hooks);
}

void QueueBasedPolicy::enqueue(int cpu, SchedEntity* se, bool wakeup) {
  rq(cpu).enqueue(se, wakeup);
}

void QueueBasedPolicy::dequeue(int cpu, SchedEntity* se) {
  rq(cpu).dequeue(se);
}

SchedEntity* QueueBasedPolicy::pick_next(int cpu) {
  SchedEntity* se = rq(cpu).pick_next();
  if (se != nullptr) on_picked(cpu, se);
  return se;
}

void QueueBasedPolicy::put_prev(int cpu, SchedEntity* se) {
  rq(cpu).put_prev(se);
}

void QueueBasedPolicy::account(int cpu, SimDuration delta_exec) {
  rq(cpu).account_curr(delta_exec);
}

SimDuration QueueBasedPolicy::slice_for(int cpu,
                                        const SchedEntity* se) const {
  return rq(cpu).slice_for(se);
}

bool QueueBasedPolicy::should_preempt(int cpu,
                                      const SchedEntity* wakee) const {
  return rq(cpu).should_preempt(wakee);
}

void QueueBasedPolicy::place_fresh(int cpu, SchedEntity* se) {
  // Join at the queue's fairness floor: starts slightly behind the head so
  // running tasks are not preempted by a thundering herd of spawns. Under
  // arrival keys the enqueue assigns the tail key itself.
  se->vruntime = rq(cpu).min_vruntime();
  rq(cpu).enqueue(se, /*wakeup=*/false);
}

void QueueBasedPolicy::place_migrated(int src_cpu, int dst_cpu,
                                      SchedEntity* se) {
  // Translate the key into the destination queue's window (a no-op position
  // under arrival keys, where enqueue re-keys at the tail).
  se->vruntime =
      se->vruntime - rq(src_cpu).min_vruntime() + rq(dst_cpu).min_vruntime();
  rq(dst_cpu).enqueue(se, /*wakeup=*/false);
}

void QueueBasedPolicy::vb_park(int cpu, SchedEntity* se) {
  rq(cpu).vb_park(se);
}

void QueueBasedPolicy::vb_unpark(int cpu, SchedEntity* se) {
  rq(cpu).vb_unpark(se);
}

void QueueBasedPolicy::vb_clear_current(int cpu, SchedEntity* se) {
  rq(cpu).vb_clear_current(se);
}

void QueueBasedPolicy::bwd_mark_skip(int cpu, SchedEntity* se) {
  rq(cpu).bwd_mark_skip(se);
}

int QueueBasedPolicy::nr_running(int cpu) const {
  return rq(cpu).nr_running();
}

int QueueBasedPolicy::nr_schedulable(int cpu) const {
  return rq(cpu).nr_schedulable();
}

int QueueBasedPolicy::nr_vb_blocked(int cpu) const {
  return rq(cpu).nr_vb_blocked();
}

int QueueBasedPolicy::nr_bwd_skipped(int cpu) const {
  return rq(cpu).count_bwd_skipped();
}

std::optional<BalanceDecision> QueueBasedPolicy::balance(
    int dst_cpu, FunctionRef<bool(int)> online, bool newly_idle) {
  return balancer_.find_pull(dst_cpu, rq_views_, online, newly_idle);
}

std::vector<SchedEntity*> QueueBasedPolicy::detach_all(int cpu) {
  return rq(cpu).detach_all();
}

std::string QueueBasedPolicy::tunable_prefix() const {
  return std::string("sched.") + name() + ".";
}

void QueueBasedPolicy::export_balance_tunables(
    const std::string& prefix, obs::MetricRegistry* reg) const {
  reg->register_gauge(prefix + "balance_interval_ns",
                      [this] { return cfs_->balance_interval; });
  reg->register_gauge(prefix + "balance_imbalance", [this] {
    return static_cast<std::int64_t>(cfs_->balance_imbalance);
  });
}

// ---------------------------------------------------------------------------
// CfsPolicy
// ---------------------------------------------------------------------------

void CfsPolicy::export_tunables(obs::MetricRegistry* reg) const {
  const std::string p = tunable_prefix();
  reg->register_gauge(p + "sched_latency_ns",
                      [this] { return cfs_->sched_latency; });
  reg->register_gauge(p + "min_granularity_ns",
                      [this] { return cfs_->min_granularity; });
  reg->register_gauge(p + "wakeup_granularity_ns",
                      [this] { return cfs_->wakeup_granularity; });
  export_balance_tunables(p, reg);
}

// ---------------------------------------------------------------------------
// FifoPolicy
// ---------------------------------------------------------------------------

namespace {

QueueTuning fifo_tuning(const PolicyParams* p) {
  QueueTuning t;
  t.arrival_keys = true;
  t.wakeup_preempt = false;
  t.fixed_quantum = p->fifo_slice;
  return t;
}

QueueTuning rr_tuning(const PolicyParams* p) {
  QueueTuning t;
  t.arrival_keys = true;
  t.requeue_tail = true;
  t.wakeup_preempt = false;
  t.fixed_quantum = p->rr_quantum;
  return t;
}

}  // namespace

FifoPolicy::FifoPolicy(const hw::Topology* topo, const CfsParams* cfs,
                       const PolicyParams* params)
    : QueueBasedPolicy(topo, cfs, params, fifo_tuning(params)) {}

void FifoPolicy::export_tunables(obs::MetricRegistry* reg) const {
  const std::string p = tunable_prefix();
  reg->register_gauge(p + "slice_ns", [this] { return params_->fifo_slice; });
  export_balance_tunables(p, reg);
}

// ---------------------------------------------------------------------------
// RoundRobinPolicy
// ---------------------------------------------------------------------------

RoundRobinPolicy::RoundRobinPolicy(const hw::Topology* topo,
                                   const CfsParams* cfs,
                                   const PolicyParams* params)
    : QueueBasedPolicy(topo, cfs, params, rr_tuning(params)) {}

void RoundRobinPolicy::export_tunables(obs::MetricRegistry* reg) const {
  const std::string p = tunable_prefix();
  reg->register_gauge(p + "quantum_ns", [this] { return params_->rr_quantum; });
  export_balance_tunables(p, reg);
}

// ---------------------------------------------------------------------------
// PredictiveCfsPolicy
// ---------------------------------------------------------------------------

PredictiveCfsPolicy::PredictiveCfsPolicy(const hw::Topology* topo,
                                         const CfsParams* cfs,
                                         const PolicyParams* params)
    : QueueBasedPolicy(topo, cfs, params, QueueTuning{}),
      hist_(static_cast<std::size_t>(topo->n_cores())) {
  for (int i = 0; i < topo->n_cores(); ++i) rq(i).set_pick_bias(this);
}

void PredictiveCfsPolicy::on_picked(int cpu, SchedEntity* se) {
  History& h = hist_[static_cast<std::size_t>(cpu)];
  h.picks.push_back(se->tid);
  const auto cap = static_cast<std::size_t>(std::max(2, params_->predict_history));
  if (h.picks.size() > cap) h.picks.erase(h.picks.begin());
}

int PredictiveCfsPolicy::transition_score(const History& h,
                                          std::int32_t cand) const {
  // Count how often `cand` followed the most recent pick in the window.
  const std::int32_t last = h.picks.back();
  int score = 0;
  for (std::size_t i = 0; i + 1 < h.picks.size(); ++i) {
    if (h.picks[i] == last && h.picks[i + 1] == cand) ++score;
  }
  return score;
}

SchedEntity* PredictiveCfsPolicy::choose(const Runqueue& rq,
                                         SchedEntity* fair) {
  const History& h = hist_[static_cast<std::size_t>(rq.cpu())];
  if (h.picks.size() < 2) return fair;  // nothing learned yet
  const std::int64_t limit = fair->vruntime + params_->predict_tie_window;
  SchedEntity* best = fair;
  int best_score = transition_score(h, fair->tid);
  // Entities are scanned in key order from the fair choice, so ties resolve
  // to the leftmost (the fairest) — deterministic by construction.
  for (SchedEntity* e = rq.next_queued(fair);
       e != nullptr && e->vruntime <= limit; e = rq.next_queued(e)) {
    if (e->vb_blocked || e->bwd_skip) continue;  // uphold VB/BWD contracts
    const int s = transition_score(h, e->tid);
    if (s > best_score) {
      best = e;
      best_score = s;
    }
  }
  return best;
}

void PredictiveCfsPolicy::export_tunables(obs::MetricRegistry* reg) const {
  const std::string p = tunable_prefix();
  reg->register_gauge(p + "sched_latency_ns",
                      [this] { return cfs_->sched_latency; });
  reg->register_gauge(p + "min_granularity_ns",
                      [this] { return cfs_->min_granularity; });
  reg->register_gauge(p + "wakeup_granularity_ns",
                      [this] { return cfs_->wakeup_granularity; });
  reg->register_gauge(p + "history", [this] {
    return static_cast<std::int64_t>(params_->predict_history);
  });
  reg->register_gauge(p + "tie_window_ns",
                      [this] { return params_->predict_tie_window; });
  export_balance_tunables(p, reg);
}

}  // namespace eo::sched
