// CfsParams is header-only; anchor translation unit.
#include "sched/cfs.h"
