// NUMA-aware pull load balancer (policy only).
//
// Mirrors the structure of CFS load balancing that matters for the paper:
// periodic per-core balancing plus newly-idle balancing, preferring pulls
// within the socket before crossing sockets, triggered by an imbalance in
// runnable-task counts. The *mechanism* (dequeue/enqueue, penalties, stats)
// is applied by the kernel; this class only decides what to pull, so it can
// be unit-tested in isolation.
//
// Interaction with the paper's findings: under vanilla blocking, sleepers
// leave the runqueue, so the per-core load a balancer sees fluctuates wildly
// and triggers excessive migrations (Table 1). Under VB, blocked threads
// remain counted, loads stay flat, and almost no balancing triggers.
#pragma once

#include <optional>
#include <vector>

#include "common/function_ref.h"
#include "hw/topology.h"
#include "obs/metrics.h"
#include "sched/cfs.h"
#include "sched/policy.h"
#include "sched/runqueue.h"

namespace eo::sched {

class LoadBalancer {
 public:
  LoadBalancer(const hw::Topology* topo, const CfsParams* params)
      : topo_(topo), params_(params) {}

  /// Wires the metric counters (balance attempts and decided pulls) from
  /// the policy's registration hooks.
  void attach(const ObsHooks& hooks) {
    m_attempts_ = hooks.balance_attempts;
    m_pulls_ = hooks.balance_pulls;
  }

  /// Finds a task to pull to `dst_cpu`. `rqs[i]` is core i's runqueue;
  /// `online(i)` says whether core i participates. `newly_idle` lowers the
  /// imbalance threshold to 1, as CFS does for idle balancing. The online
  /// predicate is a non-owning FunctionRef: this runs on every periodic and
  /// newly-idle balance, and must not touch std::function machinery.
  std::optional<BalanceDecision> find_pull(int dst_cpu,
                                           const std::vector<Runqueue*>& rqs,
                                           FunctionRef<bool(int)> online,
                                           bool newly_idle) const;

 private:
  std::optional<BalanceDecision> find_pull_in(
      int dst_cpu, const std::vector<Runqueue*>& rqs,
      FunctionRef<bool(int)> online, bool same_socket_only,
      int threshold) const;

  const hw::Topology* topo_;
  const CfsParams* params_;
  obs::Counter m_attempts_;
  obs::Counter m_pulls_;
};

}  // namespace eo::sched
