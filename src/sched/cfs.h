// CFS tunables.
//
// The paper characterizes Linux's completely fair scheduler with a regular
// time slice of 3 ms and a minimum slice of 750 µs before preemption; we use
// exactly those: slice = max(sched_latency / nr_runnable, min_granularity).
#pragma once

#include "common/units.h"

namespace eo::sched {

struct CfsParams {
  /// Targeted scheduling period divided among runnable entities.
  SimDuration sched_latency = 3_ms;
  /// Lower bound on any slice; also the minimum run time before an entity
  /// can be preempted by a waking task.
  SimDuration min_granularity = 750_us;
  /// A waking entity preempts the current one only if its vruntime is at
  /// least this far behind (mirrors sysctl_sched_wakeup_granularity).
  SimDuration wakeup_granularity = 1_ms;
  /// Sleeper fairness: a waking entity's vruntime is floored at
  /// min_vruntime - this bonus (mirrors place_entity's latency credit).
  SimDuration sleeper_bonus = 1500_us;
  /// Periodic load-balance interval per core.
  SimDuration balance_interval = 4_ms;
  /// Imbalance (in runnable tasks) required before pulling.
  int balance_imbalance = 2;
};
// The effective tunables are exported as gauges (the /proc/sys/kernel
// sched_* analogue) by each policy's SchedPolicy::export_tunables, under a
// "sched.<policy>." prefix.

}  // namespace eo::sched
