#include "sched/policy.h"

#include "sched/policy_zoo.h"

namespace eo::sched {

std::unique_ptr<SchedPolicy> make_policy(const std::string& name,
                                         const hw::Topology* topo,
                                         const CfsParams* cfs,
                                         const PolicyParams* params) {
  if (name == "cfs") {
    return std::make_unique<CfsPolicy>(topo, cfs, params);
  }
  if (name == "fifo") {
    return std::make_unique<FifoPolicy>(topo, cfs, params);
  }
  if (name == "rr") {
    return std::make_unique<RoundRobinPolicy>(topo, cfs, params);
  }
  if (name == "pcfs") {
    return std::make_unique<PredictiveCfsPolicy>(topo, cfs, params);
  }
  return nullptr;
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> kNames = {"cfs", "fifo", "rr", "pcfs"};
  return kNames;
}

}  // namespace eo::sched
