// Intrusive red-black tree.
//
// CFS keeps runnable entities in a red-black tree ordered by virtual
// runtime; we implement the same structure rather than wrapping std::set so
// that (a) entities embed their own node (no allocation on enqueue — an
// enqueue/dequeue pair happens for every context switch), and (b) the
// leftmost entity (next to run) is cached, making pick-next O(1), as in the
// kernel.
//
// The implementation follows CLRS with an explicit per-tree nil sentinel,
// which keeps the delete fixup free of null special cases. It is validated
// against std::multiset by the property tests in tests/sched_rbtree_test.cc.
#pragma once

#include <cstddef>

#include "common/logging.h"

namespace eo::sched {

struct RbNode {
  RbNode* parent = nullptr;
  RbNode* left = nullptr;
  RbNode* right = nullptr;
  void* owner = nullptr;  ///< back-pointer to the embedding object
  bool red = false;
  bool linked = false;  ///< guards against double insert/erase
};

/// Intrusive red-black tree of T, where T embeds an `RbNode` member and
/// `NodeOf` / `OwnerOf` convert between the two. `Less` is a strict weak
/// order on T; equal keys are allowed (insertion goes right, preserving
/// FIFO order among ties when keys are monotonic).
template <typename T, RbNode T::* Member, typename Less>
class RbTree {
 public:
  explicit RbTree(Less less = Less{}) : less_(less) {
    nil_.red = false;
    nil_.parent = nil_.left = nil_.right = &nil_;
    root_ = &nil_;
    leftmost_ = &nil_;
  }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  bool empty() const { return root_ == &nil_; }
  std::size_t size() const { return size_; }

  /// The minimum element, or nullptr if empty. O(1).
  T* leftmost() const { return leftmost_ == &nil_ ? nullptr : owner(leftmost_); }

  /// In-order successor of `t`, or nullptr. O(log n) worst case.
  T* next(T* t) const {
    RbNode* n = node(t);
    EO_CHECK(n->linked);
    RbNode* s = successor(n);
    return s == &nil_ ? nullptr : owner(s);
  }

  void insert(T* t) {
    RbNode* z = node(t);
    EO_CHECK(!z->linked) << "double insert";
    z->linked = true;
    z->owner = t;
    z->left = z->right = &nil_;
    RbNode* y = &nil_;
    RbNode* x = root_;
    bool went_left_always = true;
    while (x != &nil_) {
      y = x;
      if (less_(*t, *owner(x))) {
        x = x->left;
      } else {
        x = x->right;
        went_left_always = false;
      }
    }
    z->parent = y;
    if (y == &nil_) {
      root_ = z;
      leftmost_ = z;
    } else if (less_(*t, *owner(y))) {
      y->left = z;
      if (went_left_always) leftmost_ = z;
    } else {
      y->right = z;
    }
    z->red = true;
    insert_fixup(z);
    ++size_;
  }

  void erase(T* t) {
    RbNode* z = node(t);
    EO_CHECK(z->linked) << "erase of unlinked node";
    if (z == leftmost_) leftmost_ = successor(z);

    RbNode* y = z;
    bool y_was_red = y->red;
    RbNode* x;
    if (z->left == &nil_) {
      x = z->right;
      transplant(z, z->right);
    } else if (z->right == &nil_) {
      x = z->left;
      transplant(z, z->left);
    } else {
      y = minimum(z->right);
      y_was_red = y->red;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // x may be nil; fixup needs its parent
      } else {
        transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->red = z->red;
    }
    if (!y_was_red) erase_fixup(x);
    z->parent = z->left = z->right = nullptr;
    z->linked = false;
    --size_;
  }

  bool contains(const T* t) const { return node(const_cast<T*>(t))->linked; }

  /// Validates red-black invariants (test helper). Returns black height, or
  /// -1 on violation.
  int validate() const {
    if (root_ == &nil_) return 0;
    if (root_->red) return -1;
    return validate_node(root_);
  }

 private:
  static RbNode* node(T* t) { return &(t->*Member); }
  static T* owner(RbNode* n) { return static_cast<T*>(n->owner); }

  RbNode* minimum(RbNode* x) const {
    while (x->left != &nil_) x = x->left;
    return x;
  }

  RbNode* successor(RbNode* x) const {
    if (x->right != &nil_) return minimum(x->right);
    RbNode* y = x->parent;
    while (y != &nil_ && x == y->right) {
      x = y;
      y = y->parent;
    }
    return y;
  }

  void rotate_left(RbNode* x) {
    RbNode* y = x->right;
    x->right = y->left;
    if (y->left != &nil_) y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == &nil_) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void rotate_right(RbNode* x) {
    RbNode* y = x->left;
    x->left = y->right;
    if (y->right != &nil_) y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == &nil_) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void transplant(RbNode* u, RbNode* v) {
    if (u->parent == &nil_) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    v->parent = u->parent;
  }

  void insert_fixup(RbNode* z) {
    while (z->parent->red) {
      if (z->parent == z->parent->parent->left) {
        RbNode* y = z->parent->parent->right;
        if (y->red) {
          z->parent->red = false;
          y->red = false;
          z->parent->parent->red = true;
          z = z->parent->parent;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            rotate_left(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          rotate_right(z->parent->parent);
        }
      } else {
        RbNode* y = z->parent->parent->left;
        if (y->red) {
          z->parent->red = false;
          y->red = false;
          z->parent->parent->red = true;
          z = z->parent->parent;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            rotate_right(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          rotate_left(z->parent->parent);
        }
      }
    }
    root_->red = false;
  }

  void erase_fixup(RbNode* x) {
    while (x != root_ && !x->red) {
      if (x == x->parent->left) {
        RbNode* w = x->parent->right;
        if (w->red) {
          w->red = false;
          x->parent->red = true;
          rotate_left(x->parent);
          w = x->parent->right;
        }
        if (!w->left->red && !w->right->red) {
          w->red = true;
          x = x->parent;
        } else {
          if (!w->right->red) {
            w->left->red = false;
            w->red = true;
            rotate_right(w);
            w = x->parent->right;
          }
          w->red = x->parent->red;
          x->parent->red = false;
          w->right->red = false;
          rotate_left(x->parent);
          x = root_;
        }
      } else {
        RbNode* w = x->parent->left;
        if (w->red) {
          w->red = false;
          x->parent->red = true;
          rotate_right(x->parent);
          w = x->parent->left;
        }
        if (!w->right->red && !w->left->red) {
          w->red = true;
          x = x->parent;
        } else {
          if (!w->left->red) {
            w->right->red = false;
            w->red = true;
            rotate_left(w);
            w = x->parent->left;
          }
          w->red = x->parent->red;
          x->parent->red = false;
          w->left->red = false;
          rotate_right(x->parent);
          x = root_;
        }
      }
    }
    x->red = false;
  }

  int validate_node(RbNode* n) const {
    if (n == &nil_) return 0;
    if (n->red && (n->left->red || n->right->red)) return -1;
    if (n->left != &nil_ && less_(*owner(n), *owner(n->left))) return -1;
    if (n->right != &nil_ && less_(*owner(n->right), *owner(n))) return -1;
    const int lh = validate_node(n->left);
    const int rh = validate_node(n->right);
    if (lh < 0 || rh < 0 || lh != rh) return -1;
    return lh + (n->red ? 0 : 1);
  }

  Less less_;
  RbNode nil_;
  RbNode* root_;
  RbNode* leftmost_;
  std::size_t size_ = 0;
};

}  // namespace eo::sched
