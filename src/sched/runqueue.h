// Per-core runqueue engine shared by the policy zoo.
//
// Holds runnable entities in a red-black tree keyed by a sort key (vruntime
// under CFS; a monotonic arrival sequence under FIFO disciplines), with the
// running entity kept outside the tree (as in Linux). Implements the
// bookkeeping, slice computation, and the pick-next loop extended with the
// paper's two mechanisms:
//
//  * VB-blocked entities carry an inflated sort key so they sit at the tree
//    tail; pick_next naturally reaches them only when nothing else is
//    runnable, at which point each gets a brief flag-check quantum.
//  * BWD-skipped entities are passed over until every other entity on the
//    queue has been picked at least once since the skip was set.
//
// A QueueTuning selects the queue discipline (see policy_zoo.h); the default
// tuning is exactly CFS. A PickBias lets a policy overrule the fair choice
// within its own constraints (PredictiveCfsPolicy's tie-break).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "sched/cfs.h"
#include "sched/entity.h"
#include "sched/policy.h"
#include "sched/rbtree.h"
#include "trace/trace.h"

namespace eo::sched {

class Runqueue;

/// Queue-discipline knobs. The defaults reproduce CFS exactly; FIFO-family
/// policies flip them (see policy_zoo.h).
struct QueueTuning {
  /// Sort runnable entities by a monotonic per-queue arrival sequence
  /// instead of vruntime (FIFO disciplines). VB parking keeps its inflated
  /// tail keys, and a VB unpark goes to the queue *head* so VB wakers stay
  /// promptly scheduled.
  bool arrival_keys = false;
  /// put_prev re-keys a still-runnable entity to the queue tail (round-robin
  /// rotation) instead of reinserting it at its current key.
  bool requeue_tail = false;
  /// Wakeups may preempt the running entity (the CFS wakeup-granularity
  /// test). FIFO disciplines run entities to the end of their quantum.
  bool wakeup_preempt = true;
  /// When > 0, every slice is this fixed quantum instead of the CFS
  /// latency/nr computation.
  SimDuration fixed_quantum = 0;
};

/// Hook allowing a policy to overrule pick_next's fair choice. The returned
/// entity must be queued on `rq`, schedulable (not VB-blocked), and not
/// BWD-skipped; returning `fair` unchanged is always valid. Only consulted
/// on the normal pick path — never for skip-round expiry or the vacuous
/// all-skipped clear, so the BWD contract stays policy-independent.
class PickBias {
 public:
  virtual ~PickBias() = default;
  virtual SchedEntity* choose(const Runqueue& rq, SchedEntity* fair) = 0;
};

class Runqueue {
 public:
  /// `tuning == nullptr` means the CFS defaults. `params` and `tuning` must
  /// outlive the queue.
  Runqueue(int cpu, const CfsParams* params,
           const QueueTuning* tuning = nullptr)
      : cpu_(cpu), params_(params), tuning_(tuning ? tuning : &kCfsTuning) {}

  int cpu() const { return cpu_; }

  /// Wires tracing and metric counters in one registration (counters are
  /// shared across all of a kernel's runqueues — one kernel is
  /// single-threaded, so plain adds are safe).
  void attach(const ObsHooks& hooks) {
    tracer_ = hooks.tracer;
    m_enqueues_ = hooks.rq_enqueues;
    m_dequeues_ = hooks.rq_dequeues;
    m_picks_ = hooks.rq_picks;
  }

  /// Installs a pick-next tie-break hook (may be null).
  void set_pick_bias(PickBias* bias) { bias_ = bias; }

  /// Runnable entities including the one currently running and any
  /// VB-blocked parked entities (VB keeps them on the queue — that is the
  /// point: load stays stable).
  int nr_running() const { return nr_running_; }
  /// Entities that are genuinely schedulable (not VB-blocked).
  int nr_schedulable() const { return nr_running_ - nr_vb_blocked_; }
  int nr_vb_blocked() const { return nr_vb_blocked_; }

  std::int64_t min_vruntime() const { return min_vruntime_; }
  SchedEntity* curr() const { return curr_; }

  /// Queued (not current) entities in sort-key order, for PickBias scans.
  SchedEntity* first_queued() const { return tree_.leftmost(); }
  SchedEntity* next_queued(SchedEntity* e) const { return tree_.next(e); }

  /// Adds an entity. If `wakeup`, applies sleeper-fairness placement; a
  /// VB-blocked entity is instead parked at the tail with an inflated key.
  void enqueue(SchedEntity* se, bool wakeup);

  /// Removes an entity (must not be curr; callers put_prev first). Clears
  /// any BWD skip state: the round bookkeeping must not keep counting a
  /// departed entity, and a migrating entity must not carry a stale skip
  /// sequence into another queue's pick counter.
  void dequeue(SchedEntity* se);

  /// Chooses the next entity to run and removes it from the tree, making it
  /// curr. Returns nullptr if nothing is runnable. May clear stale BWD skip
  /// flags. The returned entity may be VB-blocked — the kernel must then run
  /// it only for the brief flag-check quantum.
  SchedEntity* pick_next();

  /// Puts the previously running entity back into the tree (still runnable).
  void put_prev(SchedEntity* se);

  /// Accounts `delta_exec` of execution to curr and advances min_vruntime.
  /// Under arrival keys the sort key is not execution-driven; only the
  /// entity's sum_exec advances.
  void account_curr(SimDuration delta_exec);

  /// Time slice for an entity on this queue.
  SimDuration slice_for(const SchedEntity* se) const;

  /// Should `wakee` preempt the currently running entity?
  bool should_preempt(const SchedEntity* wakee) const;

  /// --- Virtual blocking hooks ---
  /// Parks curr-or-queued `se` as VB-blocked: saves its key, inflates it,
  /// repositions it at the tail. `se` must be on this queue and not curr.
  void vb_park(SchedEntity* se);
  /// Clears VB state and restores the entity near the queue head so it is
  /// scheduled promptly, as the paper's modified scheduler does for threads
  /// waking from virtual blocking.
  void vb_unpark(SchedEntity* se);

  /// Clears VB state of the *currently running* entity (woken mid
  /// flag-check-quantum); no tree manipulation needed.
  void vb_clear_current(SchedEntity* se);

  /// Removes every entity from the queue (core offlining) and returns them.
  /// curr must already have been put back and dequeued by the caller.
  /// BWD skip state is cleared, as in dequeue.
  std::vector<SchedEntity*> detach_all();

  /// --- Busy-waiting detection hooks ---
  /// Marks `se` (on this queue, not curr) as skipped.
  void bwd_mark_skip(SchedEntity* se);

  /// Queued entities currently carrying a BWD skip flag. O(1): the count is
  /// maintained at every flag transition (mark, expiry inside pick_next,
  /// dequeue of a flagged entity), so per-sample telemetry no longer walks
  /// the tree on every core.
  int count_bwd_skipped() const { return nr_bwd_skipped_; }

  /// Picks a migration victim: a queued, non-VB-blocked, non-pinned entity
  /// preferring the tree tail (least likely to run soon). Returns nullptr if
  /// none. Does not remove it.
  SchedEntity* migration_candidate() const;

  /// Test/diagnostic helper: validates the underlying tree.
  bool tree_valid() const { return tree_.validate() >= 0; }

 private:
  static const QueueTuning kCfsTuning;

  void update_min_vruntime();

  int cpu_;
  const CfsParams* params_;
  const QueueTuning* tuning_;
  trace::Tracer* tracer_ = nullptr;
  obs::Counter m_enqueues_;
  obs::Counter m_dequeues_;
  obs::Counter m_picks_;
  PickBias* bias_ = nullptr;
  RbTree<SchedEntity, &SchedEntity::rb, ByVruntime> tree_;
  SchedEntity* curr_ = nullptr;
  std::int64_t min_vruntime_ = 0;
  int nr_running_ = 0;
  int nr_vb_blocked_ = 0;
  int nr_bwd_skipped_ = 0;
  std::uint64_t pick_seq_ = 0;
  /// Monotonic counter ordering VB-parked entities FIFO at the tail.
  std::int64_t vb_park_seq_ = 0;
  /// Arrival-key counters (arrival_keys tuning): tail keys grow upward,
  /// head keys (VB unpark placement) grow downward.
  std::int64_t arrival_seq_ = 0;
  std::int64_t head_seq_ = 0;
};

}  // namespace eo::sched
