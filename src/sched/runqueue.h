// Per-core CFS runqueue.
//
// Holds runnable entities in a red-black tree keyed by vruntime, with the
// running entity kept outside the tree (as in Linux). Implements the
// vruntime bookkeeping, slice computation, and the pick-next policy extended
// with the paper's two mechanisms:
//
//  * VB-blocked entities carry an inflated vruntime so they sit at the tree
//    tail; pick_next naturally reaches them only when nothing else is
//    runnable, at which point each gets a brief flag-check quantum.
//  * BWD-skipped entities are passed over until every other entity on the
//    queue has been picked at least once since the skip was set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "sched/cfs.h"
#include "sched/entity.h"
#include "sched/rbtree.h"
#include "trace/trace.h"

namespace eo::sched {

class Runqueue {
 public:
  Runqueue(int cpu, const CfsParams* params) : cpu_(cpu), params_(params) {}

  int cpu() const { return cpu_; }

  /// Wires the event tracer (may be null; the kernel sets it at boot).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  /// Wires the metric counters (shared across all of a kernel's runqueues —
  /// one kernel is single-threaded, so plain adds are safe).
  void set_metrics(obs::Counter enqueues, obs::Counter dequeues,
                   obs::Counter picks) {
    m_enqueues_ = enqueues;
    m_dequeues_ = dequeues;
    m_picks_ = picks;
  }

  /// Runnable entities including the one currently running and any
  /// VB-blocked parked entities (VB keeps them on the queue — that is the
  /// point: load stays stable).
  int nr_running() const { return nr_running_; }
  /// Entities that are genuinely schedulable (not VB-blocked).
  int nr_schedulable() const { return nr_running_ - nr_vb_blocked_; }
  int nr_vb_blocked() const { return nr_vb_blocked_; }

  std::int64_t min_vruntime() const { return min_vruntime_; }
  SchedEntity* curr() const { return curr_; }

  /// Adds an entity. If `wakeup`, applies sleeper-fairness placement; a
  /// VB-blocked entity is instead parked at the tail with inflated vruntime.
  void enqueue(SchedEntity* se, bool wakeup);

  /// Removes an entity (must not be curr; callers put_prev first).
  void dequeue(SchedEntity* se);

  /// Chooses the next entity to run and removes it from the tree, making it
  /// curr. Returns nullptr if nothing is runnable. May clear stale BWD skip
  /// flags. The returned entity may be VB-blocked — the kernel must then run
  /// it only for the brief flag-check quantum.
  SchedEntity* pick_next();

  /// Puts the previously running entity back into the tree (still runnable).
  void put_prev(SchedEntity* se);

  /// Accounts `delta_exec` of execution to curr and advances min_vruntime.
  void account_curr(SimDuration delta_exec);

  /// Time slice for an entity on this queue.
  SimDuration slice_for(const SchedEntity* se) const;

  /// Should `wakee` preempt the currently running entity?
  bool should_preempt(const SchedEntity* wakee) const;

  /// --- Virtual blocking hooks ---
  /// Parks curr-or-queued `se` as VB-blocked: saves its vruntime, inflates
  /// it, repositions it at the tail. `se` must be on this queue and not curr.
  void vb_park(SchedEntity* se);
  /// Clears VB state and restores the entity near the queue head so it is
  /// scheduled promptly, as the paper's modified scheduler does for threads
  /// waking from virtual blocking.
  void vb_unpark(SchedEntity* se);

  /// Clears VB state of the *currently running* entity (woken mid
  /// flag-check-quantum); no tree manipulation needed.
  void vb_clear_current(SchedEntity* se);

  /// Removes every entity from the queue (core offlining) and returns them.
  /// curr must already have been put back and dequeued by the caller.
  std::vector<SchedEntity*> detach_all();

  /// --- Busy-waiting detection hooks ---
  /// Marks `se` (on this queue, not curr) as skipped.
  void bwd_mark_skip(SchedEntity* se);

  /// Queued entities currently carrying a BWD skip flag. O(1): the count is
  /// maintained at every flag transition (mark, expiry inside pick_next,
  /// enqueue/dequeue of a flagged entity), so per-sample telemetry no longer
  /// walks the tree on every core.
  int count_bwd_skipped() const { return nr_bwd_skipped_; }

  /// Picks a migration victim: a queued, non-VB-blocked, non-skipped entity
  /// preferring the tree tail (least likely to run soon). Returns nullptr if
  /// none. Does not remove it.
  SchedEntity* migration_candidate() const;

  /// Test/diagnostic helper: validates the underlying tree.
  bool tree_valid() const { return tree_.validate() >= 0; }

 private:
  void update_min_vruntime();

  int cpu_;
  const CfsParams* params_;
  trace::Tracer* tracer_ = nullptr;
  obs::Counter m_enqueues_;
  obs::Counter m_dequeues_;
  obs::Counter m_picks_;
  RbTree<SchedEntity, &SchedEntity::rb, ByVruntime> tree_;
  SchedEntity* curr_ = nullptr;
  std::int64_t min_vruntime_ = 0;
  int nr_running_ = 0;
  int nr_vb_blocked_ = 0;
  int nr_bwd_skipped_ = 0;
  std::uint64_t pick_seq_ = 0;
  /// Monotonic counter ordering VB-parked entities FIFO at the tail.
  std::int64_t vb_park_seq_ = 0;
};

}  // namespace eo::sched
