// The pluggable scheduler-policy boundary between src/kern and src/sched.
//
// The kernel owns the *mechanism* of scheduling (events, context-switch
// costs, wake chains, timers); a SchedPolicy owns every *decision*: who runs
// next, for how long, whether a wakeup preempts, and what to pull when
// balancing. CFS is just the reference plugin (see policy_zoo.h); FIFO,
// round-robin, and a predictive variant plug into the same interface.
//
// Every policy must uphold the paper's two mechanism contracts:
//
//  * VB-park: a VB-blocked entity stays on the queue (load stays stable) but
//    sorts behind all schedulable work; pick_next reaches it only when
//    nothing else is runnable, and then the kernel gives it only a brief
//    flag-check quantum. vb_unpark must make the entity promptly
//    schedulable again.
//  * BWD-skip: an entity marked by busy-waiting detection is passed over by
//    pick_next until the rest of the queue has had a turn (or everyone is
//    skipped, which vacuously completes the round). A policy may not starve
//    a skipped entity forever.
//
// See src/sched/README.md for the full contract and a walkthrough of writing
// a new policy.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/function_ref.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sched/entity.h"

namespace eo::hw {
class Topology;
}
namespace eo::trace {
class Tracer;
}

namespace eo::sched {

struct CfsParams;

/// Everything a policy may report into, handed over in one registration call
/// (SchedPolicy::attach) instead of per-subsystem setter pairs. All counters
/// are kernel-wide cells (one kernel is single-host-threaded, so plain adds
/// are safe); any member may be left default/null.
struct ObsHooks {
  trace::Tracer* tracer = nullptr;
  obs::Counter rq_enqueues;
  obs::Counter rq_dequeues;
  obs::Counter rq_picks;
  obs::Counter balance_attempts;
  obs::Counter balance_pulls;
};

/// Tunables for the non-CFS members of the policy zoo. Kept separate from
/// CfsParams so the CFS knobs stay exactly the paper's characterization.
struct PolicyParams {
  /// Round-robin: fixed quantum every entity runs before rotating to the
  /// queue tail.
  SimDuration rr_quantum = 1_ms;
  /// FIFO: run-to-block discipline; this (long) slice only bounds how long a
  /// CPU-bound entity can hold a core before the kernel re-evaluates.
  SimDuration fifo_slice = 100_ms;
  /// PredictiveCfs: picks remembered per core for the transition history.
  int predict_history = 8;
  /// PredictiveCfs: a predicted entity may win the tie-break only while its
  /// vruntime is within this window of the fair (CFS) choice.
  SimDuration predict_tie_window = 500_us;
};

/// What a balance pass decided to migrate. The policy decides; the kernel
/// applies the mechanism (dequeue/enqueue via place_migrated, penalties,
/// stats).
struct BalanceDecision {
  int src_cpu = -1;
  int dst_cpu = -1;
  SchedEntity* victim = nullptr;
  bool cross_socket = false;
};

/// Abstract per-kernel scheduling policy. All calls are made from the
/// kernel's single host thread; `cpu` always names one of the kernel's
/// cores. Entities are owned by the kernel's tasks and outlive the policy's
/// references to them.
class SchedPolicy {
 public:
  virtual ~SchedPolicy() = default;

  /// Stable registry name ("cfs", "fifo", ...); also the --sched= spelling.
  virtual const char* name() const = 0;

  // --- observability registration ---
  /// Wires tracing and metric counters in one shot (kernel boot).
  virtual void attach(const ObsHooks& hooks) = 0;
  /// Registers the policy's effective tunables as gauges under a
  /// "sched.<name>." prefix, so an exported metrics document records which
  /// scheduler configuration produced it. `this` must outlive `reg`.
  virtual void export_tunables(obs::MetricRegistry* reg) const = 0;

  // --- per-core queue operations ---
  /// Adds a runnable entity. `wakeup` requests wake placement (whatever that
  /// means for the policy); a VB-blocked entity must instead be parked at
  /// the tail per the VB contract.
  virtual void enqueue(int cpu, SchedEntity* se, bool wakeup) = 0;
  /// Removes an entity (must not be the running one; put_prev it first).
  /// Must tear down any BWD skip state the entity carries — round
  /// bookkeeping may not keep counting a departed entity.
  virtual void dequeue(int cpu, SchedEntity* se) = 0;
  /// Chooses the next entity and makes it current. May return a VB-blocked
  /// entity only when nothing else is schedulable (flag-check quantum).
  virtual SchedEntity* pick_next(int cpu) = 0;
  /// Returns the previously running entity to the queue (still runnable).
  virtual void put_prev(int cpu, SchedEntity* se) = 0;
  /// Accounts `delta_exec` of execution to the running entity.
  virtual void account(int cpu, SimDuration delta_exec) = 0;
  /// Time slice for an entity on `cpu`'s queue.
  virtual SimDuration slice_for(int cpu, const SchedEntity* se) const = 0;
  /// Should `wakee` preempt the entity currently running on `cpu`? Must
  /// return true when the core runs a VB flag-check quantum (real work
  /// always beats flag polling).
  virtual bool should_preempt(int cpu, const SchedEntity* wakee) const = 0;

  // --- placement ---
  /// Places a fresh (or evicted-and-rehomed) entity on `cpu`: joins the
  /// queue's fairness window without preempting incumbents.
  virtual void place_fresh(int cpu, SchedEntity* se) = 0;
  /// Moves a balance victim (already dequeued from `src_cpu`) onto
  /// `dst_cpu`, translating its position between the queues' windows.
  virtual void place_migrated(int src_cpu, int dst_cpu, SchedEntity* se) = 0;

  // --- VB / BWD mechanism hooks ---
  /// Parks a queued (not current) entity as VB-blocked at the queue tail.
  virtual void vb_park(int cpu, SchedEntity* se) = 0;
  /// Clears VB state of a queued entity and makes it promptly schedulable.
  virtual void vb_unpark(int cpu, SchedEntity* se) = 0;
  /// Clears VB state of the *currently running* entity (woken mid
  /// flag-check quantum).
  virtual void vb_clear_current(int cpu, SchedEntity* se) = 0;
  /// Marks a queued (not current) entity as BWD-skipped for one round.
  virtual void bwd_mark_skip(int cpu, SchedEntity* se) = 0;

  // --- introspection (sampler / watchdog / wake placement) ---
  /// Runnable entities incl. the running one and VB-parked ones.
  virtual int nr_running(int cpu) const = 0;
  /// Entities genuinely schedulable (not VB-blocked).
  virtual int nr_schedulable(int cpu) const = 0;
  virtual int nr_vb_blocked(int cpu) const = 0;
  /// Queued entities currently carrying a BWD skip flag.
  virtual int nr_bwd_skipped(int cpu) const = 0;

  // --- balancing / elasticity ---
  /// Decides a pull toward `dst_cpu` (periodic or newly-idle balancing).
  /// `online(i)` says whether core i participates. Returns nullopt when
  /// balanced. The kernel applies the returned decision.
  virtual std::optional<BalanceDecision> balance(int dst_cpu,
                                                FunctionRef<bool(int)> online,
                                                bool newly_idle) = 0;
  /// Removes every entity from `cpu`'s queue (core offlining) and returns
  /// them; the kernel re-places them on surviving cores.
  virtual std::vector<SchedEntity*> detach_all(int cpu) = 0;
};

/// Builds a policy by registry name for a machine of `topo`'s size; returns
/// nullptr for an unknown name. `topo`, `cfs`, and `params` must outlive the
/// policy.
std::unique_ptr<SchedPolicy> make_policy(const std::string& name,
                                         const hw::Topology* topo,
                                         const CfsParams* cfs,
                                         const PolicyParams* params);

/// Registry names accepted by make_policy, in presentation order.
const std::vector<std::string>& policy_names();

}  // namespace eo::sched
