#include "sched/sched_stats.h"

#include <sstream>

#include "obs/metrics.h"

namespace eo::sched {

namespace {
#define EO_SCHED_STATS_COUNT(name) +1
constexpr std::size_t kNumFields = 0 EO_SCHED_STATS_FIELDS(EO_SCHED_STATS_COUNT);
#undef EO_SCHED_STATS_COUNT
}  // namespace

// A field added to the struct but not the X-macro changes sizeof and fails
// here; one added to the macro flows into summary() and the bridge for free.
static_assert(sizeof(SchedStats) == kNumFields * sizeof(std::uint64_t),
              "SchedStats field missing from EO_SCHED_STATS_FIELDS");

std::string SchedStats::summary() const {
  std::ostringstream os;
  bool first = true;
#define EO_SCHED_STATS_PRINT(field)          \
  if (!first) os << ' ';                     \
  os << #field "=" << field;                 \
  first = false;
  EO_SCHED_STATS_FIELDS(EO_SCHED_STATS_PRINT)
#undef EO_SCHED_STATS_PRINT
  return os.str();
}

void SchedStats::register_metrics(obs::MetricRegistry* reg) const {
#define EO_SCHED_STATS_REGISTER(field) \
  reg->register_counter("sched." #field, &field);
  EO_SCHED_STATS_FIELDS(EO_SCHED_STATS_REGISTER)
#undef EO_SCHED_STATS_REGISTER
}

}  // namespace eo::sched
