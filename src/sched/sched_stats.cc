#include "sched/sched_stats.h"

#include <sstream>

namespace eo::sched {

std::string SchedStats::summary() const {
  std::ostringstream os;
  os << "switches=" << context_switches << " (vol=" << voluntary_switches
     << " invol=" << involuntary_switches << ") wakeups=" << wakeups
     << " migr(in=" << migrations_in_node << " cross=" << migrations_cross_node
     << " wake=" << wakeup_migrations << ")"
     << " vb(park=" << vb_parks << " unpark=" << vb_unparks
     << " check=" << vb_check_quanta << ")"
     << " futex(sleep=" << futex_sleeps << " wake=" << futex_wakes << ")"
     << " bwd(fires=" << bwd_timer_fires << " detect=" << bwd_detections
     << " desched=" << bwd_descheduled << ")"
     << " ple_exits=" << ple_exits;
  return os.str();
}

}  // namespace eo::sched
