// High-resolution repeating timer.
//
// Thin wrapper over the event engine's periodic path, used for the per-core
// BWD monitoring timer (100 µs) and the periodic load balancer. Mirrors the
// hrtimer interface the paper's implementation uses. The engine re-arms the
// event in place (`Engine::schedule_periodic`), so a steady-state timer
// costs one heap push per fire and zero allocations — the previous
// pop-push-allocate cycle per interval is gone, with identical event
// ordering (the next occurrence is armed immediately before the callback,
// exactly where the old self-re-arm scheduled it).
#pragma once

#include "common/units.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace eo::sched {

/// Identifies a timer in kTimerFire trace records (arg0).
enum class TimerId : std::uint64_t {
  kBalance = 0,
  kBwd = 1,
  kOther = 2,
};

class RepeatingTimer {
 public:
  RepeatingTimer() = default;
  ~RepeatingTimer() { stop(); }

  RepeatingTimer(const RepeatingTimer&) = delete;
  RepeatingTimer& operator=(const RepeatingTimer&) = delete;

  /// Wires the event tracer: every fire emits a kTimerFire record tagged
  /// with `id` on `core`. Survives stop()/start() cycles (core offlining).
  void set_trace(trace::Tracer* tracer, int core, TimerId id) {
    tracer_ = tracer;
    trace_core_ = core;
    trace_id_ = id;
  }

  /// Arms the timer: first fire at now + offset + period, then every period.
  /// The callback runs inside the engine event; re-arming is automatic.
  void start(sim::Engine* engine, SimDuration period, SimDuration offset,
             sim::EventFn fn);

  /// Disarms; safe to call when not armed or from within the callback.
  void stop();

  bool armed() const { return armed_; }

 private:
  void trace_fire();

  sim::Engine* engine_ = nullptr;
  SimDuration period_ = 0;
  sim::EventFn fn_;
  sim::EventId event_ = sim::kInvalidEvent;
  bool armed_ = false;
  trace::Tracer* tracer_ = nullptr;
  int trace_core_ = -1;
  TimerId trace_id_ = TimerId::kOther;
};

}  // namespace eo::sched
