// High-resolution repeating timer.
//
// Thin wrapper over the event engine that re-arms itself each period, used
// for the per-core BWD monitoring timer (100 µs) and the periodic load
// balancer. Mirrors the hrtimer interface the paper's implementation uses.
#pragma once

#include <functional>

#include "common/units.h"
#include "sim/engine.h"

namespace eo::sched {

class RepeatingTimer {
 public:
  RepeatingTimer() = default;
  ~RepeatingTimer() { stop(); }

  RepeatingTimer(const RepeatingTimer&) = delete;
  RepeatingTimer& operator=(const RepeatingTimer&) = delete;

  /// Arms the timer: first fire at now + offset + period, then every period.
  /// The callback runs inside the engine event; re-arming is automatic.
  void start(sim::Engine* engine, SimDuration period, SimDuration offset,
             std::function<void()> fn);

  /// Disarms; safe to call when not armed or from within the callback.
  void stop();

  bool armed() const { return armed_; }

 private:
  void arm_next();

  sim::Engine* engine_ = nullptr;
  SimDuration period_ = 0;
  std::function<void()> fn_;
  sim::EventId event_ = sim::kInvalidEvent;
  bool armed_ = false;
};

}  // namespace eo::sched
