// Kernel-wide scheduling statistics.
//
// These counters back Table 1 (CPU utilization, in-node and cross-node
// migrations) and the BWD accuracy tables, plus diagnostics used throughout
// the tests and benches.
//
// The field list lives in the `EO_SCHED_STATS_FIELDS` X-macro so that the
// struct, `summary()`, and the metric-registry bridge can never drift apart:
// a new counter added to the macro appears in all three automatically, and a
// field added to the struct directly trips the sizeof static_assert in
// sched_stats.cc (see sched_stats_test).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace eo::obs {
class MetricRegistry;
}

namespace eo::sched {

/// Every SchedStats counter. X(name) per field; all fields are uint64.
#define EO_SCHED_STATS_FIELDS(X) \
  /* Context switching. */       \
  X(context_switches)            \
  X(voluntary_switches)          \
  X(involuntary_switches)        \
  /* Wakeups. */                 \
  X(wakeups)                     \
  X(wakeup_migrations)           \
  /* Load-balancer migrations, split by socket relationship (Table 1). */ \
  X(migrations_in_node)          \
  X(migrations_cross_node)       \
  /* Virtual blocking. */        \
  X(vb_parks)                    \
  X(vb_unparks)                  \
  X(vb_check_quanta)             \
  X(vb_fallback_vanilla)         \
  /* Vanilla sleep/wakeup. */    \
  X(futex_sleeps)                \
  X(futex_wakes)                 \
  /* Busy-waiting detection. */  \
  X(bwd_timer_fires)             \
  X(bwd_detections)              \
  X(bwd_descheduled)             \
  /* Pause-loop exiting (VM mode). */ \
  X(ple_exits)

struct SchedStats {
#define EO_SCHED_STATS_DECL(name) std::uint64_t name = 0;
  EO_SCHED_STATS_FIELDS(EO_SCHED_STATS_DECL)
#undef EO_SCHED_STATS_DECL

  std::uint64_t total_migrations() const {
    return migrations_in_node + migrations_cross_node;
  }

  /// "name=value" pairs for every field, in declaration order.
  std::string summary() const;

  /// Registers every field as an external counter named "sched.<field>".
  /// `this` must outlive the registry's snapshots.
  void register_metrics(obs::MetricRegistry* reg) const;
};

}  // namespace eo::sched
