// Kernel-wide scheduling statistics.
//
// These counters back Table 1 (CPU utilization, in-node and cross-node
// migrations) and the BWD accuracy tables, plus diagnostics used throughout
// the tests and benches.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace eo::sched {

struct SchedStats {
  // Context switching.
  std::uint64_t context_switches = 0;
  std::uint64_t voluntary_switches = 0;
  std::uint64_t involuntary_switches = 0;

  // Wakeups.
  std::uint64_t wakeups = 0;
  std::uint64_t wakeup_migrations = 0;  ///< wakee placed on a different core

  // Load-balancer migrations, split by socket relationship (Table 1).
  std::uint64_t migrations_in_node = 0;
  std::uint64_t migrations_cross_node = 0;

  // Virtual blocking.
  std::uint64_t vb_parks = 0;
  std::uint64_t vb_unparks = 0;
  std::uint64_t vb_check_quanta = 0;
  std::uint64_t vb_fallback_vanilla = 0;  ///< waits below the VB threshold

  // Vanilla sleep/wakeup.
  std::uint64_t futex_sleeps = 0;
  std::uint64_t futex_wakes = 0;

  // Busy-waiting detection.
  std::uint64_t bwd_timer_fires = 0;
  std::uint64_t bwd_detections = 0;
  std::uint64_t bwd_descheduled = 0;

  // Pause-loop exiting (VM mode).
  std::uint64_t ple_exits = 0;

  std::uint64_t total_migrations() const {
    return migrations_in_node + migrations_cross_node;
  }

  std::string summary() const;
};

}  // namespace eo::sched
