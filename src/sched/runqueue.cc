#include "sched/runqueue.h"

#include <algorithm>

#include "common/logging.h"

namespace eo::sched {

const QueueTuning Runqueue::kCfsTuning{};

void Runqueue::enqueue(SchedEntity* se, bool wakeup) {
  EO_CHECK(!se->on_rq) << "enqueue of entity already on a runqueue";
  // Skip state is queue-local; dequeue/detach_all tear it down, so an entity
  // can never arrive still flagged (a stale skip sequence would corrupt this
  // queue's round bookkeeping).
  EO_CHECK(!se->bwd_skip) << "enqueue of entity with BWD skip state";
  se->on_rq = true;
  se->cpu = cpu_;
  if (se->vb_blocked) {
    // Park at the tail, FIFO among parked entities.
    se->vruntime = kVbVruntimeBase + vb_park_seq_++;
    ++nr_vb_blocked_;
  } else if (tuning_->arrival_keys) {
    // FIFO disciplines: runnable entities queue in arrival order,
    // irrespective of how much they have run.
    se->vruntime = arrival_seq_++;
  } else {
    // Sleeper fairness: grant a bounded latency credit, but never let the
    // entity's vruntime move backwards relative to what it had. (Fresh and
    // migrated entities get the same floor; `wakeup` is part of the policy
    // interface for disciplines that place wakers differently.)
    (void)wakeup;
    se->vruntime =
        std::max(se->vruntime, min_vruntime_ - params_->sleeper_bonus);
  }
  tree_.insert(se);
  ++nr_running_;
  m_enqueues_.inc();
  EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kEnqueue, se->tid,
                 static_cast<std::uint64_t>(nr_running_),
                 static_cast<std::uint64_t>(se->vruntime));
}

void Runqueue::dequeue(SchedEntity* se) {
  EO_CHECK(se->on_rq);
  EO_CHECK(se != curr_) << "dequeue of running entity; put_prev it first";
  tree_.erase(se);
  se->on_rq = false;
  se->cpu = -1;
  --nr_running_;
  if (se->vb_blocked) --nr_vb_blocked_;
  if (se->bwd_skip) {
    se->bwd_skip = false;
    se->bwd_skip_seq = 0;
    --nr_bwd_skipped_;
  }
  m_dequeues_.inc();
  update_min_vruntime();
  EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kDequeue, se->tid,
                 static_cast<std::uint64_t>(nr_running_),
                 static_cast<std::uint64_t>(se->vruntime));
}

SchedEntity* Runqueue::pick_next() {
  EO_CHECK(curr_ == nullptr) << "pick_next with an entity still running";
  if (tree_.size() == 0) return nullptr;
  ++pick_seq_;

  SchedEntity* chosen = nullptr;
  bool saw_skipped = false;
  bool skip_expiry_pick = false;
  for (SchedEntity* e = tree_.leftmost(); e != nullptr; e = tree_.next(e)) {
    if (e->bwd_skip) {
      // The skip expires once every other schedulable entity has had a pick
      // since the flag was set.
      const auto others =
          static_cast<std::uint64_t>(std::max(1, nr_schedulable() - 1));
      if (pick_seq_ - e->bwd_skip_seq > others) {
        e->bwd_skip = false;
        --nr_bwd_skipped_;
        EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kBwdSkipClear, e->tid,
                       pick_seq_, 0);
        chosen = e;
        skip_expiry_pick = true;
        break;
      }
      saw_skipped = true;
      continue;
    }
    chosen = e;  // VB-blocked entities sort last; reaching one means nothing
                 // else is schedulable, and the kernel will give it only a
                 // flag-check quantum.
    break;
  }
  if (chosen == nullptr && saw_skipped) {
    // Everyone runnable is skip-flagged: the "others ran at least once"
    // condition is vacuously met; clear flags and take the leftmost.
    for (SchedEntity* e = tree_.leftmost(); e != nullptr; e = tree_.next(e)) {
      e->bwd_skip = false;
      EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kBwdSkipClear, e->tid,
                     pick_seq_, 1);
    }
    nr_bwd_skipped_ = 0;  // curr_ is null, so every flagged entity was queued
    chosen = tree_.leftmost();
    skip_expiry_pick = true;
  }
  if (chosen == nullptr) return nullptr;
  if (bias_ != nullptr && !skip_expiry_pick && !chosen->vb_blocked) {
    // Policy tie-break: may overrule the fair choice, but never a
    // skip-round completion and never with a VB-parked or skipped entity.
    SchedEntity* biased = bias_->choose(*this, chosen);
    EO_CHECK(biased != nullptr && biased->on_rq && biased != curr_);
    EO_CHECK(!biased->vb_blocked && !biased->bwd_skip);
    chosen = biased;
  }
  tree_.erase(chosen);
  curr_ = chosen;
  m_picks_.inc();
  EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kPickNext, chosen->tid,
                 static_cast<std::uint64_t>(nr_running_),
                 static_cast<std::uint64_t>(chosen->vruntime));
  return chosen;
}

void Runqueue::put_prev(SchedEntity* se) {
  EO_CHECK_EQ(se, curr_);
  curr_ = nullptr;
  if (tuning_->requeue_tail && tuning_->arrival_keys && !se->vb_blocked) {
    // Round-robin rotation: a preempted-or-expired entity rejoins at the
    // tail. (VB-parked entities keep their inflated tail key.)
    se->vruntime = arrival_seq_++;
  }
  tree_.insert(se);
}

void Runqueue::account_curr(SimDuration delta_exec) {
  if (curr_ == nullptr || delta_exec <= 0) return;
  if (!tuning_->arrival_keys) {
    curr_->vruntime += curr_->vruntime_delta(delta_exec);
  }
  curr_->sum_exec += delta_exec;
  update_min_vruntime();
}

SimDuration Runqueue::slice_for(const SchedEntity* se) const {
  if (tuning_->fixed_quantum > 0) return tuning_->fixed_quantum;
  const int nr = std::max(1, nr_schedulable());
  SimDuration slice = params_->sched_latency * se->weight /
                      (static_cast<SimDuration>(nr) * kNice0Weight);
  return std::max(slice, params_->min_granularity);
}

bool Runqueue::should_preempt(const SchedEntity* wakee) const {
  if (curr_ == nullptr) return true;
  if (curr_->vb_blocked) return true;  // flag-check quanta yield to real work
  if (!tuning_->wakeup_preempt) return false;
  return wakee->vruntime + params_->wakeup_granularity < curr_->vruntime;
}

void Runqueue::vb_park(SchedEntity* se) {
  EO_CHECK(se->on_rq);
  EO_CHECK(se != curr_);
  EO_CHECK(!se->vb_blocked);
  tree_.erase(se);
  se->saved_vruntime = se->vruntime;
  se->vb_blocked = true;
  se->vruntime = kVbVruntimeBase + vb_park_seq_++;
  tree_.insert(se);
  ++nr_vb_blocked_;
  update_min_vruntime();
  EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kVbPark, se->tid,
                 static_cast<std::uint64_t>(se->saved_vruntime),
                 static_cast<std::uint64_t>(nr_vb_blocked_));
}

void Runqueue::vb_unpark(SchedEntity* se) {
  EO_CHECK(se->on_rq);
  EO_CHECK(se->vb_blocked);
  EO_CHECK(se != curr_);
  tree_.erase(se);
  se->vb_blocked = false;
  if (tuning_->arrival_keys) {
    // FIFO disciplines have no vruntime credit to give; place the waker at
    // the queue head so VB wakeups stay prompt (the VB contract).
    se->vruntime = --head_seq_;
  } else {
    // Wake placement: restore the saved vruntime but grant the same latency
    // credit a real wakeup would get, so VB wakers are scheduled promptly.
    se->vruntime =
        std::max(se->saved_vruntime, min_vruntime_ - params_->sleeper_bonus);
  }
  tree_.insert(se);
  --nr_vb_blocked_;
  update_min_vruntime();
  EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kVbClear, se->tid,
                 static_cast<std::uint64_t>(se->vruntime), 0);
}

void Runqueue::vb_clear_current(SchedEntity* se) {
  EO_CHECK_EQ(se, curr_);
  EO_CHECK(se->vb_blocked);
  se->vb_blocked = false;
  if (tuning_->arrival_keys) {
    se->vruntime = --head_seq_;
  } else {
    se->vruntime =
        std::max(se->saved_vruntime, min_vruntime_ - params_->sleeper_bonus);
  }
  --nr_vb_blocked_;
  update_min_vruntime();
  EO_TRACE_EVENT(tracer_, cpu_, trace::EventKind::kVbClear, se->tid,
                 static_cast<std::uint64_t>(se->vruntime), 1);
}

std::vector<SchedEntity*> Runqueue::detach_all() {
  EO_CHECK(curr_ == nullptr);
  std::vector<SchedEntity*> out;
  while (SchedEntity* e = tree_.leftmost()) {
    tree_.erase(e);
    e->on_rq = false;
    e->cpu = -1;
    --nr_running_;
    if (e->vb_blocked) --nr_vb_blocked_;
    if (e->bwd_skip) {
      // Same teardown as dequeue: skip state must not leave the queue.
      e->bwd_skip = false;
      e->bwd_skip_seq = 0;
      --nr_bwd_skipped_;
    }
    out.push_back(e);
  }
  EO_CHECK_EQ(nr_running_, 0);
  EO_CHECK_EQ(nr_vb_blocked_, 0);
  EO_CHECK_EQ(nr_bwd_skipped_, 0);
  return out;
}

void Runqueue::bwd_mark_skip(SchedEntity* se) {
  EO_CHECK(se->on_rq);
  EO_CHECK(se != curr_);
  if (!se->bwd_skip) ++nr_bwd_skipped_;
  se->bwd_skip = true;
  se->bwd_skip_seq = pick_seq_;
}

SchedEntity* Runqueue::migration_candidate() const {
  SchedEntity* last_valid = nullptr;
  for (SchedEntity* e = tree_.leftmost(); e != nullptr; e = tree_.next(e)) {
    if (e->vb_blocked) continue;  // VB: blocked threads are never migrated
    if (e->pinned) continue;
    last_valid = e;
  }
  return last_valid;
}

void Runqueue::update_min_vruntime() {
  std::int64_t v = min_vruntime_;
  bool have = false;
  if (curr_ != nullptr && !curr_->vb_blocked) {
    v = curr_->vruntime;
    have = true;
  }
  if (SchedEntity* lm = tree_.leftmost();
      lm != nullptr && lm->vruntime < kVbVruntimeBase) {
    v = have ? std::min(v, lm->vruntime) : lm->vruntime;
    have = true;
  }
  if (have) min_vruntime_ = std::max(min_vruntime_, v);
}

}  // namespace eo::sched
