// The built-in scheduler policies.
//
// All four share one engine: QueueBasedPolicy owns a Runqueue per core plus
// a LoadBalancer, and maps the SchedPolicy interface onto them. A concrete
// policy is therefore just a QueueTuning (the queue discipline) plus
// optional hooks — which is exactly the point of the API: the VB-park and
// BWD-skip mechanics live once, in the engine, and every discipline
// interoperates with them.
//
//  * CfsPolicy           — the reference plugin; byte-identical to the
//                          pre-refactor hard-coded scheduler.
//  * FifoPolicy          — arrival order, run-to-block (SCHED_FIFO-like).
//  * RoundRobinPolicy    — arrival order, fixed quantum, rotate to tail.
//  * PredictiveCfsPolicy — CFS plus a KernelOracle-style per-core last-N
//                          pick-history predictor biasing vruntime
//                          tie-breaks toward the likeliest next task.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "sched/cfs.h"
#include "sched/load_balancer.h"
#include "sched/policy.h"
#include "sched/runqueue.h"

namespace eo::sched {

/// SchedPolicy implemented on per-core Runqueues + a pull LoadBalancer.
/// Subclasses pick the discipline via QueueTuning and may observe picks.
class QueueBasedPolicy : public SchedPolicy {
 public:
  QueueBasedPolicy(const hw::Topology* topo, const CfsParams* cfs,
                   const PolicyParams* params, QueueTuning tuning);

  void attach(const ObsHooks& hooks) override;

  void enqueue(int cpu, SchedEntity* se, bool wakeup) override;
  void dequeue(int cpu, SchedEntity* se) override;
  SchedEntity* pick_next(int cpu) override;
  void put_prev(int cpu, SchedEntity* se) override;
  void account(int cpu, SimDuration delta_exec) override;
  SimDuration slice_for(int cpu, const SchedEntity* se) const override;
  bool should_preempt(int cpu, const SchedEntity* wakee) const override;

  void place_fresh(int cpu, SchedEntity* se) override;
  void place_migrated(int src_cpu, int dst_cpu, SchedEntity* se) override;

  void vb_park(int cpu, SchedEntity* se) override;
  void vb_unpark(int cpu, SchedEntity* se) override;
  void vb_clear_current(int cpu, SchedEntity* se) override;
  void bwd_mark_skip(int cpu, SchedEntity* se) override;

  int nr_running(int cpu) const override;
  int nr_schedulable(int cpu) const override;
  int nr_vb_blocked(int cpu) const override;
  int nr_bwd_skipped(int cpu) const override;

  std::optional<BalanceDecision> balance(int dst_cpu,
                                         FunctionRef<bool(int)> online,
                                         bool newly_idle) override;
  std::vector<SchedEntity*> detach_all(int cpu) override;

  /// Direct queue access for tests and tooling.
  Runqueue& rq(int cpu) { return rqs_[static_cast<std::size_t>(cpu)]; }
  const Runqueue& rq(int cpu) const {
    return rqs_[static_cast<std::size_t>(cpu)];
  }

 protected:
  /// Called after every successful pick (the predictor's learning signal).
  virtual void on_picked(int cpu, SchedEntity* se) { (void)cpu; (void)se; }

  /// Registers the balancer tunables shared by every queue-based policy.
  void export_balance_tunables(const std::string& prefix,
                               obs::MetricRegistry* reg) const;
  /// "sched.<name>." — the export_tunables prefix for this policy.
  std::string tunable_prefix() const;

  const CfsParams* cfs_;
  const PolicyParams* params_;

 private:
  QueueTuning tuning_;
  std::deque<Runqueue> rqs_;  // deque: stable addresses, Runqueue is unmovable
  /// Runqueue views handed to the balancer, built once — balance runs on
  /// every newly-idle pick and balance tick, so it must not allocate.
  std::vector<Runqueue*> rq_views_;
  LoadBalancer balancer_;
};

/// The reference plugin: exactly the pre-refactor CFS-clone scheduler.
class CfsPolicy final : public QueueBasedPolicy {
 public:
  CfsPolicy(const hw::Topology* topo, const CfsParams* cfs,
            const PolicyParams* params)
      : QueueBasedPolicy(topo, cfs, params, QueueTuning{}) {}
  const char* name() const override { return "cfs"; }
  void export_tunables(obs::MetricRegistry* reg) const override;
};

/// Arrival-order, run-to-block. No wakeup preemption; the (long) fifo_slice
/// only bounds how long a CPU hog holds a core before re-evaluation — after
/// which it is re-picked (its key is unchanged), i.e. it keeps running.
class FifoPolicy final : public QueueBasedPolicy {
 public:
  FifoPolicy(const hw::Topology* topo, const CfsParams* cfs,
             const PolicyParams* params);
  const char* name() const override { return "fifo"; }
  void export_tunables(obs::MetricRegistry* reg) const override;
};

/// Arrival-order with a fixed quantum; an expired entity rotates to the
/// queue tail. No wakeup preemption.
class RoundRobinPolicy final : public QueueBasedPolicy {
 public:
  RoundRobinPolicy(const hw::Topology* topo, const CfsParams* cfs,
                   const PolicyParams* params);
  const char* name() const override { return "rr"; }
  void export_tunables(obs::MetricRegistry* reg) const override;
};

/// CFS with a KernelOracle-style next-task predictor: each core remembers
/// its last predict_history picks; when several entities sit within
/// predict_tie_window of the fair choice's vruntime, the one most often
/// observed to follow the previous pick wins the tie-break. Deterministic:
/// strict-majority transition counts, leftmost wins ties.
class PredictiveCfsPolicy final : public QueueBasedPolicy, private PickBias {
 public:
  PredictiveCfsPolicy(const hw::Topology* topo, const CfsParams* cfs,
                      const PolicyParams* params);
  const char* name() const override { return "pcfs"; }
  void export_tunables(obs::MetricRegistry* reg) const override;

 protected:
  void on_picked(int cpu, SchedEntity* se) override;

 private:
  SchedEntity* choose(const Runqueue& rq, SchedEntity* fair) override;

  /// Sliding window of the last N picked tids on one core, oldest first.
  struct History {
    std::vector<std::int32_t> picks;
  };
  /// How often `cand` followed the most recent pick within the window.
  int transition_score(const History& h, std::int32_t cand) const;

  std::vector<History> hist_;
};

}  // namespace eo::sched
