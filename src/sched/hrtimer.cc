#include "sched/hrtimer.h"

#include "common/logging.h"

namespace eo::sched {

void RepeatingTimer::start(sim::Engine* engine, SimDuration period,
                           SimDuration offset, sim::EventFn fn) {
  EO_CHECK(engine != nullptr);
  EO_CHECK_GT(period, 0);
  stop();
  engine_ = engine;
  period_ = period;
  fn_ = std::move(fn);
  armed_ = true;
  event_ = engine_->schedule_periodic(offset + period_, period_, [this] {
    trace_fire();
    fn_();
  });
}

void RepeatingTimer::trace_fire() {
  EO_TRACE_EVENT(tracer_, trace_core_, trace::EventKind::kTimerFire, 0,
                 static_cast<std::uint64_t>(trace_id_),
                 static_cast<std::uint64_t>(period_));
}

void RepeatingTimer::stop() {
  if (engine_ != nullptr && event_ != sim::kInvalidEvent) {
    engine_->cancel(event_);
    event_ = sim::kInvalidEvent;
  }
  armed_ = false;
}

}  // namespace eo::sched
