// The ten spinlock algorithms studied by the paper (Figure 13, Table 2),
// following the taxonomy of Kashyap et al. [21]:
//
//   alock-ls     Anderson array lock with local spinning
//   CLH          Craig/Landin/Hagersten implicit-queue lock
//   Malth        Malthusian lock (Dice): LIFO admission culls active spinners
//   MCS          Mellor-Crummey/Scott explicit-queue lock
//   Partitioned  partitioned ticket lock (multiple grant slots)
//   Pthread      pthread_spin-style exchange loop (PAUSE in the body)
//   Ticket       classic ticket lock
//   TTAS         test-and-test-and-set
//   CNA          compact NUMA-aware lock (socket-partitioned MCS)
//   AQS          qspinlock-style: TAS word + pending spinner + queue
//
// Each is written against the simulated word/spin primitives, so every
// algorithm's waiting really executes as spin segments the BWD machinery can
// (or cannot) detect. Queue-lock bookkeeping that real implementations keep
// in per-thread nodes is kept in host-side state mutated between awaits —
// each inter-await segment is atomic in the simulation, which is exactly the
// atomicity a real implementation gets from its word-sized CAS.
//
// `slot` is the caller's dense thread index [0, max_threads); queue locks
// use it to address their per-thread nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kern/kernel.h"
#include "runtime/coro.h"
#include "runtime/env.h"

namespace eo::locks {

enum class SpinLockKind {
  kAlockLs,
  kClh,
  kMalthusian,
  kMcs,
  kPartitioned,
  kPthreadSpin,
  kTicket,
  kTtas,
  kCna,
  kAqs,
};

/// All ten kinds, in the display order of the paper's Figure 13.
const std::vector<SpinLockKind>& all_spinlock_kinds();
const char* to_string(SpinLockKind k);

class SpinLock {
 public:
  virtual ~SpinLock() = default;
  virtual runtime::SimCall<void> lock(runtime::Env env, int slot) = 0;
  virtual runtime::SimCall<void> unlock(runtime::Env env, int slot) = 0;
  virtual const char* name() const = 0;
};

/// Factory. `max_threads` bounds the slot index.
std::unique_ptr<SpinLock> make_spinlock(SpinLockKind kind, kern::Kernel& k,
                                        int max_threads);

}  // namespace eo::locks
