#include "locks/blocking_locks.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "runtime/mutex.h"
#include "runtime/spin.h"

namespace eo::locks {

using runtime::Env;
using runtime::next_spin_site;
using runtime::SimCall;

const char* to_string(BlockingLockKind k) {
  switch (k) {
    case BlockingLockKind::kPthreadMutex:
      return "pthread";
    case BlockingLockKind::kMutexee:
      return "mutexee";
    case BlockingLockKind::kMcsTp:
      return "mcstp";
    case BlockingLockKind::kShflLock:
      return "shfllock";
  }
  return "?";
}

const std::vector<BlockingLockKind>& all_blocking_lock_kinds() {
  static const std::vector<BlockingLockKind> kinds = {
      BlockingLockKind::kPthreadMutex,
      BlockingLockKind::kMutexee,
      BlockingLockKind::kMcsTp,
      BlockingLockKind::kShflLock,
  };
  return kinds;
}

namespace {

/// Spin budget before parking (Mutexee uses a few hundred pause iterations;
/// ~30 µs is representative on the modeled hardware).
constexpr SimDuration kSpinBudget = 8'000;

// --- pthread mutex wrapper ----------------------------------------------------

class PthreadMutexLock final : public BlockingLock {
 public:
  explicit PthreadMutexLock(kern::Kernel& k) : m_(k) {}
  SimCall<void> lock(Env env, int) override { return m_.lock(env); }
  SimCall<void> unlock(Env env, int) override { return m_.unlock(env); }
  const char* name() const override { return "pthread"; }

 private:
  runtime::SimMutex m_;
};

// --- Mutexee -------------------------------------------------------------------

class MutexeeLock final : public BlockingLock {
 public:
  explicit MutexeeLock(kern::Kernel& k)
      : state_(k.alloc_word(0)), site_(next_spin_site()) {}

  SimCall<void> lock(Env env, int) override {
    for (;;) {
      const std::uint64_t won = co_await env.cas(state_, 0, 1);
      if (won) co_return;
      // Spin phase (with PAUSE) bounded by the spin budget.
      const std::uint64_t ok = co_await env.spin_until_timeout(
          state_, kern::SpinPredicate::masked_eq(/*mask=*/1, /*want=*/0),
          site_, kSpinBudget, /*uses_pause=*/true);
      if (ok) continue;  // lock looked free; retry the CAS
      // Park: advertise a sleeper (bit 1) and futex-wait. CAS so a release
      // racing between the load and the store is not overwritten.
      const std::uint64_t v = co_await env.load(state_);
      if ((v & 1) == 0) continue;
      const std::uint64_t marked = co_await env.cas(state_, v, v | 2);
      if (!marked) continue;
      co_await env.futex_wait(state_, v | 2);
      // Woken: acquire in the contended state (locked + sleepers). Taking
      // the lock with a bare CAS(0, 1) here would erase the sleeper bit and
      // strand the remaining parked waiters (lost wakeup).
      for (;;) {
        const std::uint64_t prev = co_await env.exchange(state_, 3);
        if ((prev & 1) == 0) co_return;
        co_await env.futex_wait(state_, 3);
      }
    }
  }
  SimCall<void> unlock(Env env, int) override {
    const std::uint64_t prev = co_await env.exchange(state_, 0);
    if (prev & 2) co_await env.futex_wake(state_, 1);
    co_return;
  }
  const char* name() const override { return "mutexee"; }

 private:
  kern::SimWord* state_;
  hw::BranchSite site_;
};

// --- MCS-TP ---------------------------------------------------------------------

class McsTpLock final : public BlockingLock {
 public:
  McsTpLock(kern::Kernel& k, int max_threads)
      : site_(next_spin_site()), flag_(static_cast<size_t>(max_threads)) {
    for (auto& f : flag_) f = k.alloc_word(0);
  }

  SimCall<void> lock(Env env, int slot) override {
    // Enqueue (atomic segment).
    const bool was_free = !held_ && queue_.empty();
    if (was_free) {
      held_ = true;
      co_await env.fetch_add(flag_[static_cast<size_t>(slot)], 0);
      co_return;
    }
    queue_.push_back(slot);
    co_await env.store(flag_[static_cast<size_t>(slot)], 0);
    for (;;) {
      // Time-published spin: spin for a budget, then park on the flag.
      const std::uint64_t got = co_await env.spin_until_timeout(
          flag_[static_cast<size_t>(slot)], kern::SpinPredicate::eq(1), site_,
          kSpinBudget);
      if (got) break;
      const std::uint64_t v = co_await env.load(flag_[static_cast<size_t>(slot)]);
      if (v == 1) break;
      co_await env.futex_wait(flag_[static_cast<size_t>(slot)], 0);
      const std::uint64_t after = co_await env.load(flag_[static_cast<size_t>(slot)]);
      if (after == 1) break;
    }
    held_ = true;
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    (void)slot;
    held_ = false;
    if (queue_.empty()) co_return;
    const int succ = queue_.front();
    queue_.pop_front();
    held_ = true;  // handed directly to the successor
    co_await env.store(flag_[static_cast<size_t>(succ)], 1);
    co_await env.futex_wake(flag_[static_cast<size_t>(succ)], 1);
    co_return;
  }
  const char* name() const override { return "mcstp"; }

 private:
  hw::BranchSite site_;
  std::vector<kern::SimWord*> flag_;
  std::deque<int> queue_;
  bool held_ = false;
};

// --- SHFLLOCK -------------------------------------------------------------------

class ShflLock final : public BlockingLock {
 public:
  ShflLock(kern::Kernel& k, int max_threads)
      : kernel_(&k), state_(k.alloc_word(0)), site_(next_spin_site()),
        flag_(static_cast<size_t>(max_threads)) {
    for (auto& f : flag_) f = k.alloc_word(0);
  }

  SimCall<void> lock(Env env, int slot) override {
    // Lock stealing: try the TAS word first, even with waiters queued.
    const std::uint64_t won = co_await env.cas(state_, 0, 1);
    if (won) {
      holder_socket_ = socket_of(env);
      co_return;
    }
    queue_.push_back({slot, socket_of(env)});
    co_await env.store(flag_[static_cast<size_t>(slot)], 0);
    for (;;) {
      // Head waiter spins briefly (shufflers run in the waiting phase in the
      // real lock; the reorder cost is charged at wake time here).
      const std::uint64_t got = co_await env.spin_until_timeout(
          flag_[static_cast<size_t>(slot)], kern::SpinPredicate::eq(1), site_,
          kSpinBudget);
      if (got) break;
      const std::uint64_t before = co_await env.load(flag_[static_cast<size_t>(slot)]);
      if (before == 1) break;
      co_await env.futex_wait(flag_[static_cast<size_t>(slot)], 0);
      const std::uint64_t after = co_await env.load(flag_[static_cast<size_t>(slot)]);
      if (after == 1) break;
    }
    // Woken as the designated next holder: take the word.
    for (;;) {
      const std::uint64_t won2 = co_await env.cas(state_, 0, 1);
      if (won2) break;
      co_await env.spin_until_eq(state_, 0, site_);
    }
    holder_socket_ = socket_of(env);
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    (void)slot;
    co_await env.store(state_, 0);
    if (queue_.empty()) co_return;
    // Shuffle: move same-socket waiters ahead of the rest (the NUMA-aware
    // policy that, as the paper notes, always prefers the holder's socket
    // and can starve remote waiters / cause load fluctuation).
    std::stable_partition(queue_.begin(), queue_.end(),
                          [this](const Waiter& w) {
                            return w.socket == holder_socket_;
                          });
    const int succ = queue_.front().slot;
    queue_.pop_front();
    co_await env.store(flag_[static_cast<size_t>(succ)], 1);
    co_await env.futex_wake(flag_[static_cast<size_t>(succ)], 1);
    co_return;
  }
  const char* name() const override { return "shfllock"; }

 private:
  struct Waiter {
    int slot;
    int socket;
  };
  int socket_of(Env env) const {
    const int cpu = env.task().last_cpu;
    return cpu >= 0 ? kernel_->config().topo.socket_of(cpu) : 0;
  }

  kern::Kernel* kernel_;
  kern::SimWord* state_;
  hw::BranchSite site_;
  std::vector<kern::SimWord*> flag_;
  std::deque<Waiter> queue_;
  int holder_socket_ = 0;
};

}  // namespace

std::unique_ptr<BlockingLock> make_blocking_lock(BlockingLockKind kind,
                                                 kern::Kernel& k,
                                                 int max_threads) {
  EO_CHECK_GT(max_threads, 0);
  switch (kind) {
    case BlockingLockKind::kPthreadMutex:
      return std::make_unique<PthreadMutexLock>(k);
    case BlockingLockKind::kMutexee:
      return std::make_unique<MutexeeLock>(k);
    case BlockingLockKind::kMcsTp:
      return std::make_unique<McsTpLock>(k, max_threads);
    case BlockingLockKind::kShflLock:
      return std::make_unique<ShflLock>(k, max_threads);
  }
  return nullptr;
}

}  // namespace eo::locks
