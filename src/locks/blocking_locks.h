// Spin-then-park locks and SHFLLOCK (the comparison set of the paper's
// Section 4.4 / Figure 15):
//
//   Mutexee  [14]  energy-friendly mutex: bounded spin, then futex park.
//   MCS-TP   [17]  time-published MCS: queue waiters spin with a timeout,
//                  then park; the holder wakes the next published waiter.
//   SHFLLOCK [21]  queue lock with a "shuffler" that reorders the waiter
//                  queue by NUMA socket before waking; waiters spin briefly
//                  and park.
//   Pthread        the plain futex mutex (runtime::SimMutex) for reference.
//
// All of them ultimately rely on the kernel futex for parking — which is
// precisely why, as the paper finds, they still collapse under thread
// oversubscription on a vanilla kernel: the sleep/wakeup path, not the lock
// policy, is the bottleneck.
#pragma once

#include <memory>
#include <vector>

#include "kern/kernel.h"
#include "runtime/coro.h"
#include "runtime/env.h"

namespace eo::locks {

enum class BlockingLockKind {
  kPthreadMutex,
  kMutexee,
  kMcsTp,
  kShflLock,
};

const char* to_string(BlockingLockKind k);
const std::vector<BlockingLockKind>& all_blocking_lock_kinds();

class BlockingLock {
 public:
  virtual ~BlockingLock() = default;
  virtual runtime::SimCall<void> lock(runtime::Env env, int slot) = 0;
  virtual runtime::SimCall<void> unlock(runtime::Env env, int slot) = 0;
  virtual const char* name() const = 0;
};

std::unique_ptr<BlockingLock> make_blocking_lock(BlockingLockKind kind,
                                                 kern::Kernel& k,
                                                 int max_threads);

}  // namespace eo::locks
