#include "locks/spinlocks.h"

#include <deque>

#include "common/logging.h"
#include "runtime/spin.h"

namespace eo::locks {

using runtime::Env;
using runtime::next_spin_site;
using runtime::SimCall;

const std::vector<SpinLockKind>& all_spinlock_kinds() {
  static const std::vector<SpinLockKind> kinds = {
      SpinLockKind::kAlockLs,     SpinLockKind::kClh,
      SpinLockKind::kMalthusian,  SpinLockKind::kMcs,
      SpinLockKind::kPartitioned, SpinLockKind::kPthreadSpin,
      SpinLockKind::kTicket,      SpinLockKind::kTtas,
      SpinLockKind::kCna,         SpinLockKind::kAqs,
  };
  return kinds;
}

const char* to_string(SpinLockKind k) {
  switch (k) {
    case SpinLockKind::kAlockLs:
      return "alock-ls";
    case SpinLockKind::kClh:
      return "clh";
    case SpinLockKind::kMalthusian:
      return "malth";
    case SpinLockKind::kMcs:
      return "mcs";
    case SpinLockKind::kPartitioned:
      return "partitioned";
    case SpinLockKind::kPthreadSpin:
      return "pthread";
    case SpinLockKind::kTicket:
      return "ticket";
    case SpinLockKind::kTtas:
      return "ttas";
    case SpinLockKind::kCna:
      return "cna";
    case SpinLockKind::kAqs:
      return "aqs";
  }
  return "?";
}

namespace {

// --- Ticket -----------------------------------------------------------------

class TicketLock final : public SpinLock {
 public:
  explicit TicketLock(kern::Kernel& k)
      : next_(k.alloc_word(0)), serving_(k.alloc_word(0)),
        site_(next_spin_site()) {}

  SimCall<void> lock(Env env, int) override {
    const std::uint64_t my = co_await env.fetch_add(next_, 1);
    co_await env.spin_until_eq(serving_, my, site_);
    co_return;
  }
  SimCall<void> unlock(Env env, int) override {
    co_await env.fetch_add(serving_, 1);
    co_return;
  }
  const char* name() const override { return "ticket"; }

 private:
  kern::SimWord* next_;
  kern::SimWord* serving_;
  hw::BranchSite site_;
};

// --- TTAS -------------------------------------------------------------------

class TtasLock final : public SpinLock {
 public:
  explicit TtasLock(kern::Kernel& k)
      : state_(k.alloc_word(0)), site_(next_spin_site()) {}

  SimCall<void> lock(Env env, int) override {
    for (;;) {
      const std::uint64_t won = co_await env.cas(state_, 0, 1);
      if (won) co_return;
      co_await env.spin_until_eq(state_, 0, site_);
    }
  }
  SimCall<void> unlock(Env env, int) override {
    co_await env.store(state_, 0);
    co_return;
  }
  const char* name() const override { return "ttas"; }

 private:
  kern::SimWord* state_;
  hw::BranchSite site_;
};

// --- pthread_spin-style (exchange loop with PAUSE) ---------------------------

class PthreadSpinLock final : public SpinLock {
 public:
  explicit PthreadSpinLock(kern::Kernel& k)
      : state_(k.alloc_word(0)), site_(next_spin_site()) {}

  SimCall<void> lock(Env env, int) override {
    for (;;) {
      const std::uint64_t prev = co_await env.exchange(state_, 1);
      if (prev == 0) co_return;
      // The glibc spin body contains PAUSE/NOP (paper Figure 6).
      co_await env.spin_until_eq(state_, 0, site_, /*uses_pause=*/true);
    }
  }
  SimCall<void> unlock(Env env, int) override {
    co_await env.store(state_, 0);
    co_return;
  }
  const char* name() const override { return "pthread"; }

 private:
  kern::SimWord* state_;
  hw::BranchSite site_;
};

// --- Anderson array lock with local spinning ---------------------------------

class AlockLs final : public SpinLock {
 public:
  AlockLs(kern::Kernel& k, int max_threads)
      : n_(max_threads), tail_(k.alloc_word(0)), site_(next_spin_site()),
        my_pos_(static_cast<size_t>(max_threads), 0) {
    flags_.reserve(static_cast<size_t>(n_));
    for (int i = 0; i < n_; ++i) flags_.push_back(k.alloc_word(i == 0 ? 1 : 0));
  }

  SimCall<void> lock(Env env, int slot) override {
    const auto pos = static_cast<int>(co_await env.fetch_add(tail_, 1) %
                                      static_cast<std::uint64_t>(n_));
    my_pos_[static_cast<size_t>(slot)] = pos;
    co_await env.spin_until_eq(flags_[static_cast<size_t>(pos)], 1, site_);
    // Reset for the slot's next lap around the array.
    co_await env.store(flags_[static_cast<size_t>(pos)], 0);
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    const int pos = my_pos_[static_cast<size_t>(slot)];
    co_await env.store(flags_[static_cast<size_t>((pos + 1) % n_)], 1);
    co_return;
  }
  const char* name() const override { return "alock-ls"; }

 private:
  int n_;
  kern::SimWord* tail_;
  hw::BranchSite site_;
  std::vector<kern::SimWord*> flags_;
  std::vector<int> my_pos_;
};

// --- CLH ---------------------------------------------------------------------

class ClhLock final : public SpinLock {
 public:
  ClhLock(kern::Kernel& k, int max_threads)
      : site_(next_spin_site()),
        my_node_(static_cast<size_t>(max_threads)),
        my_pred_(static_cast<size_t>(max_threads), nullptr) {
    // One node per thread plus the initial dummy (unlocked) node.
    for (auto& n : my_node_) n = k.alloc_word(0);
    dummy_ = k.alloc_word(0);  // unlocked
    tail_ = dummy_;
  }

  SimCall<void> lock(Env env, int slot) override {
    kern::SimWord* my = my_node_[static_cast<size_t>(slot)];
    co_await env.store(my, 1);  // locked
    // Atomically swap ourselves in as tail (host-side pointer swap is the
    // inter-await atomic segment; charge one atomic op for realism).
    co_await env.fetch_add(my, 0);
    kern::SimWord* pred = tail_;
    tail_ = my;
    my_pred_[static_cast<size_t>(slot)] = pred;
    co_await env.spin_until_eq(pred, 0, site_);
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    kern::SimWord* my = my_node_[static_cast<size_t>(slot)];
    // Recycle: the predecessor's node becomes ours for the next acquisition.
    my_node_[static_cast<size_t>(slot)] =
        my_pred_[static_cast<size_t>(slot)];
    co_await env.store(my, 0);  // release our (old) node
    co_return;
  }
  const char* name() const override { return "clh"; }

 private:
  hw::BranchSite site_;
  std::vector<kern::SimWord*> my_node_;
  std::vector<kern::SimWord*> my_pred_;
  kern::SimWord* dummy_;
  kern::SimWord* tail_;
};

// --- MCS ---------------------------------------------------------------------

class McsLock final : public SpinLock {
 public:
  McsLock(kern::Kernel& k, int max_threads)
      : site_(next_spin_site()),
        flag_(static_cast<size_t>(max_threads)),
        link_(static_cast<size_t>(max_threads)) {
    for (auto& f : flag_) f = k.alloc_word(0);
    for (auto& l : link_) l = k.alloc_word(0);  // successor slot + 1; 0 = none
  }

  SimCall<void> lock(Env env, int slot) override {
    co_await env.store(link_[static_cast<size_t>(slot)], 0);
    co_await env.store(flag_[static_cast<size_t>(slot)], 1);  // waiting
    const int pred = tail_;  // swap tail (atomic segment)
    tail_ = slot;
    if (pred < 0) co_return;  // lock was free
    co_await env.store(link_[static_cast<size_t>(pred)],
                       static_cast<std::uint64_t>(slot) + 1);
    co_await env.spin_until_eq(flag_[static_cast<size_t>(slot)], 0, site_);
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    std::uint64_t link = co_await env.load(link_[static_cast<size_t>(slot)]);
    if (link == 0) {
      if (tail_ == slot) {
        tail_ = -1;  // the CAS(tail, me, null) success path
        co_return;
      }
      // A successor swapped the tail but has not linked yet; spin briefly on
      // our link word until it does.
      co_await env.spin_until(link_[static_cast<size_t>(slot)],
                              kern::SpinPredicate::ne(0), site_);
      link = co_await env.load(link_[static_cast<size_t>(slot)]);
    }
    const auto succ = static_cast<size_t>(link - 1);
    co_await env.store(flag_[succ], 0);  // hand off
    co_return;
  }
  const char* name() const override { return "mcs"; }

 private:
  hw::BranchSite site_;
  std::vector<kern::SimWord*> flag_;
  std::vector<kern::SimWord*> link_;
  int tail_ = -1;
};

// --- Partitioned ticket -------------------------------------------------------

class PartitionedTicketLock final : public SpinLock {
 public:
  static constexpr int kSlots = 8;

  PartitionedTicketLock(kern::Kernel& k, int max_threads)
      : next_(k.alloc_word(0)), site_(next_spin_site()),
        my_ticket_(static_cast<size_t>(max_threads), 0) {
    for (int i = 0; i < kSlots; ++i) {
      grants_.push_back(k.alloc_word(i == 0 ? 0 : ~0ull));
    }
    // grants_[t % kSlots] == t means ticket t may enter.
  }

  SimCall<void> lock(Env env, int slot) override {
    const std::uint64_t my = co_await env.fetch_add(next_, 1);
    my_ticket_[static_cast<size_t>(slot)] = my;
    co_await env.spin_until_eq(grants_[my % kSlots], my, site_);
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    const std::uint64_t my = my_ticket_[static_cast<size_t>(slot)];
    co_await env.store(grants_[(my + 1) % kSlots], my + 1);
    co_return;
  }
  const char* name() const override { return "partitioned"; }

 private:
  kern::SimWord* next_;
  hw::BranchSite site_;
  std::vector<kern::SimWord*> grants_;
  std::vector<std::uint64_t> my_ticket_;
};

// --- Malthusian (Dice): LIFO admission, passive culling -----------------------

class MalthusianLock final : public SpinLock {
 public:
  MalthusianLock(kern::Kernel& k, int max_threads)
      : state_(k.alloc_word(0)), site_(next_spin_site()),
        flag_(static_cast<size_t>(max_threads)) {
    for (auto& f : flag_) f = k.alloc_word(0);
  }

  SimCall<void> lock(Env env, int slot) override {
    const std::uint64_t won = co_await env.cas(state_, 0, 1);
    if (won) co_return;
    // Passive set admission: LIFO — the most recent waiter becomes the
    // active spinner; earlier waiters are culled to passivity (they spin on
    // their own flag, which nobody touches until they are promoted).
    passive_.push_back(slot);
    co_await env.store(flag_[static_cast<size_t>(slot)], 0);
    co_await env.spin_until_eq(flag_[static_cast<size_t>(slot)], 1, site_);
    // Promoted: the lock was handed directly to us.
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    (void)slot;
    if (passive_.empty()) {
      co_await env.store(state_, 0);
      co_return;
    }
    // LIFO handoff.
    const int succ = passive_.back();
    passive_.pop_back();
    co_await env.store(flag_[static_cast<size_t>(succ)], 1);
    co_return;
  }
  const char* name() const override { return "malth"; }

 private:
  kern::SimWord* state_;
  hw::BranchSite site_;
  std::vector<kern::SimWord*> flag_;
  std::vector<int> passive_;
};

// --- CNA: compact NUMA-aware -------------------------------------------------

class CnaLock final : public SpinLock {
 public:
  CnaLock(kern::Kernel& k, int max_threads)
      : kernel_(&k), state_(k.alloc_word(0)), site_(next_spin_site()),
        flag_(static_cast<size_t>(max_threads)) {
    for (auto& f : flag_) f = k.alloc_word(0);
  }

  SimCall<void> lock(Env env, int slot) override {
    const std::uint64_t won = co_await env.cas(state_, 0, 1);
    if (won) {
      holder_socket_ = socket_of(env);
      co_return;
    }
    queue_.push_back({slot, socket_of(env)});
    co_await env.store(flag_[static_cast<size_t>(slot)], 0);
    co_await env.spin_until_eq(flag_[static_cast<size_t>(slot)], 1, site_);
    holder_socket_ = socket_of(env);
    co_return;
  }
  SimCall<void> unlock(Env env, int slot) override {
    (void)slot;
    if (queue_.empty()) {
      co_await env.store(state_, 0);
      co_return;
    }
    // Prefer a waiter from the holder's socket (the "compact" policy);
    // fall back to the head.
    std::size_t pick = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].socket == holder_socket_) {
        pick = i;
        break;
      }
    }
    const int succ = queue_[pick].slot;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    co_await env.store(flag_[static_cast<size_t>(succ)], 1);
    co_return;
  }
  const char* name() const override { return "cna"; }

 private:
  struct Waiter {
    int slot;
    int socket;
  };
  int socket_of(Env env) const {
    const int cpu = env.task().last_cpu;
    return cpu >= 0 ? kernel_->config().topo.socket_of(cpu) : 0;
  }

  kern::Kernel* kernel_;
  kern::SimWord* state_;
  hw::BranchSite site_;
  std::vector<kern::SimWord*> flag_;
  std::deque<Waiter> queue_;
  int holder_socket_ = 0;
};

// --- AQS: qspinlock-style (TAS word + pending + queue) -------------------------

class AqsLock final : public SpinLock {
 public:
  AqsLock(kern::Kernel& k, int max_threads)
      : state_(k.alloc_word(0)), site_(next_spin_site()),
        flag_(static_cast<size_t>(max_threads)) {
    for (auto& f : flag_) f = k.alloc_word(0);
  }

  SimCall<void> lock(Env env, int slot) override {
    const std::uint64_t won = co_await env.cas(state_, 0, 1);
    if (won) co_return;
    if (!pending_taken_ && queue_.empty()) {
      // Become the pending spinner: spin directly on the lock word.
      pending_taken_ = true;
      for (;;) {
        co_await env.spin_until_eq(state_, 0, site_);
        const std::uint64_t got = co_await env.cas(state_, 0, 1);
        if (got) {
          pending_taken_ = false;
          co_return;
        }
      }
    }
    // Queue behind the pending spinner, blocked on a per-thread flag.
    queue_.push_back(slot);
    co_await env.store(flag_[static_cast<size_t>(slot)], 0);
    co_await env.spin_until_eq(flag_[static_cast<size_t>(slot)], 1, site_);
    // Promoted to pending: spin on the word.
    pending_taken_ = true;
    for (;;) {
      co_await env.spin_until_eq(state_, 0, site_);
      const std::uint64_t got = co_await env.cas(state_, 0, 1);
      if (got) {
        pending_taken_ = false;
        co_return;
      }
    }
  }
  SimCall<void> unlock(Env env, int slot) override {
    (void)slot;
    co_await env.store(state_, 0);
    if (!pending_taken_ && !queue_.empty()) {
      const int succ = queue_.front();
      queue_.pop_front();
      co_await env.store(flag_[static_cast<size_t>(succ)], 1);
    }
    co_return;
  }
  const char* name() const override { return "aqs"; }

 private:
  kern::SimWord* state_;
  hw::BranchSite site_;
  std::vector<kern::SimWord*> flag_;
  std::deque<int> queue_;
  bool pending_taken_ = false;
};

}  // namespace

std::unique_ptr<SpinLock> make_spinlock(SpinLockKind kind, kern::Kernel& k,
                                        int max_threads) {
  EO_CHECK_GT(max_threads, 0);
  switch (kind) {
    case SpinLockKind::kAlockLs:
      return std::make_unique<AlockLs>(k, max_threads);
    case SpinLockKind::kClh:
      return std::make_unique<ClhLock>(k, max_threads);
    case SpinLockKind::kMalthusian:
      return std::make_unique<MalthusianLock>(k, max_threads);
    case SpinLockKind::kMcs:
      return std::make_unique<McsLock>(k, max_threads);
    case SpinLockKind::kPartitioned:
      return std::make_unique<PartitionedTicketLock>(k, max_threads);
    case SpinLockKind::kPthreadSpin:
      return std::make_unique<PthreadSpinLock>(k);
    case SpinLockKind::kTicket:
      return std::make_unique<TicketLock>(k);
    case SpinLockKind::kTtas:
      return std::make_unique<TtasLock>(k);
    case SpinLockKind::kCna:
      return std::make_unique<CnaLock>(k, max_threads);
    case SpinLockKind::kAqs:
      return std::make_unique<AqsLock>(k, max_threads);
  }
  return nullptr;
}

}  // namespace eo::locks
